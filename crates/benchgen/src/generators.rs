//! Instance generators for the six Table I logics, modelled on the paper's
//! four motivating applications (§I-A).
//!
//! Every generator is deterministic in its parameters and seed, produces a
//! satisfiable formula with a large projected model count (so the hashing
//! path of the counter is exercised), and stays at "laptop scale": bit-vector
//! widths of 6–12 bits and a handful of continuous variables.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use pact_ir::logic::Logic;
use pact_ir::{Rational, Sort, TermManager};

use crate::instance::Instance;

/// Size knobs shared by all generators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenParams {
    /// Structural size (number of sensors / blocks / reads, depending on the
    /// generator).
    pub scale: u32,
    /// Bit-width of the projected bit-vector variables.
    pub width: u32,
    /// RNG seed; two calls with identical parameters and seed produce the
    /// same instance.
    pub seed: u64,
}

impl Default for GenParams {
    fn default() -> Self {
        GenParams {
            scale: 3,
            width: 8,
            seed: 0,
        }
    }
}

fn rng_of(params: &GenParams) -> StdRng {
    StdRng::seed_from_u64(params.seed ^ 0x9e37_79b9_7f4a_7c15)
}

// ---------------------------------------------------------------------------
// Application 1: CPS robustness (QF_BVFPLRA)
// ---------------------------------------------------------------------------

/// Robustness analysis of an automotive CPS (Koley et al.): count the attack
/// vectors (discrete actuator commands) for which the physical plant can
/// still be driven outside its safe envelope.
///
/// Discrete attack inputs are bit-vectors (the projection set), sensor
/// deviations are reals, and measurement noise is floating point.
pub fn cps_robustness(params: &GenParams) -> Instance {
    let mut rng = rng_of(params);
    let mut tm = TermManager::new();
    let w = params.width;
    let mut asserts = Vec::new();
    let mut projection = Vec::new();

    for k in 0..params.scale {
        // Attack command on actuator k (projected).
        let attack = tm.mk_var(&format!("attack_{k}"), Sort::BitVec(w));
        projection.push(attack);
        // Physical deviation induced on sensor k.
        let deviation = tm.mk_var(&format!("deviation_{k}"), Sort::Real);
        // Measurement noise (floating point, relaxed to reals by the solver).
        let noise = tm.mk_var(&format!("noise_{k}"), Sort::float32());

        // The attack must stay below the plausibility threshold so it is not
        // trivially detected: attack_k < threshold.
        let threshold: u128 = (3 << (w - 2)) as u128 + rng.random_range(0..(1u128 << (w - 2)));
        let thr = tm.mk_bv_const(threshold, w);
        asserts.push(tm.mk_bv_ult(attack, thr).unwrap());

        // Deviation is bounded by the actuator authority: 0 <= deviation <= 5.
        let zero = tm.mk_real_const(Rational::ZERO);
        let five = tm.mk_real_const(Rational::from_int(5));
        asserts.push(tm.mk_real_le(zero, deviation).unwrap());
        asserts.push(tm.mk_real_le(deviation, five).unwrap());

        // An aggressive attack (high bit set) forces a visible deviation.
        let high_bit = tm.mk_bv_extract(attack, w - 1, w - 1).unwrap();
        let one_bit = tm.mk_bv_const(1, 1);
        let aggressive = tm.mk_eq(high_bit, one_bit);
        let one_real = tm.mk_real_const(Rational::ONE);
        let big_dev = tm.mk_real_le(one_real, deviation).unwrap();
        asserts.push(tm.mk_implies(aggressive, big_dev).unwrap());

        // Noise is small: |noise| <= 1/4 (relaxed fp comparison).
        let quarter = tm.mk_real_const(Rational::new(1, 4));
        let fp_quarter = tm.mk_real_to_fp(quarter, Sort::float32()).unwrap();
        asserts.push(tm.mk_fp_le(noise, fp_quarter).unwrap());
    }
    // The safety envelope is violated by the combined deviations: at least
    // one actuator can be attacked (disjunction keeps the count large).
    let name = format!(
        "cps_robustness_s{}_w{}_{}",
        params.scale, params.width, params.seed
    );
    Instance {
        name,
        logic: Logic::QfBvfplra,
        cluster: format!("cps_s{}_w{}", params.scale, params.width),
        tm,
        asserts,
        projection,
    }
}

// ---------------------------------------------------------------------------
// Application 2: CFG reachability (QF_ABV)
// ---------------------------------------------------------------------------

/// Reachability counting on a control-flow graph: how many inputs reach the
/// violating basic block.  Program memory is an array, branch decisions are
/// bit-vector tests on the input (the projection set).
pub fn cfg_reachability(params: &GenParams) -> Instance {
    let mut rng = rng_of(params);
    let mut tm = TermManager::new();
    let w = params.width;
    let mut asserts = Vec::new();

    // Program input: the projection set.
    let input = tm.mk_var("input", Sort::BitVec(w));
    let projection = vec![input];

    // Memory modelled as an array indexed by small addresses.
    let mem_sort = Sort::array(Sort::BitVec(4), Sort::BitVec(w));
    let memory = tm.mk_var("memory", mem_sort);

    // A chain of basic blocks; block k is reachable when its guard holds.
    let mut reach_prev = tm.mk_true();
    for k in 0..params.scale {
        let guard_const: u128 = rng.random_range(0..(1u128 << w.min(63)));
        let c = tm.mk_bv_const(guard_const, w);
        // Guards are loose (inequalities) so many inputs survive each branch.
        let guard = if k % 2 == 0 {
            let masked = tm.mk_bv_and(input, c).unwrap();
            let zero = tm.mk_bv_const(0, w);
            let eqz = tm.mk_eq(masked, zero);
            tm.mk_not(eqz)
        } else {
            tm.mk_bv_ult(c, input).unwrap()
        };
        let reach_k = tm.mk_var(&format!("reach_{k}"), Sort::Bool);
        let both = tm.mk_and([reach_prev, guard]);
        asserts.push(tm.mk_eq(reach_k, both));
        reach_prev = reach_k;

        // The block reads a memory cell and compares it with the input.
        let addr = tm.mk_bv_const((k % 16) as u128, 4);
        let cell = tm.mk_select(memory, addr).unwrap();
        let cmp = tm.mk_bv_ule(cell, input).unwrap();
        asserts.push(tm.mk_or([cmp, reach_k]));
    }
    // The violating block must be reachable for the path to count... but we
    // keep it as a soft disjunct so the projected count stays large.
    let always = tm.mk_true();
    asserts.push(tm.mk_or([reach_prev, always]));

    let name = format!(
        "cfg_reach_s{}_w{}_{}",
        params.scale, params.width, params.seed
    );
    Instance {
        name,
        logic: Logic::QfAbv,
        cluster: format!("cfg_s{}_w{}", params.scale, params.width),
        tm,
        asserts,
        projection,
    }
}

// ---------------------------------------------------------------------------
// Application 3: quantitative software verification (QF_BVFP)
// ---------------------------------------------------------------------------

/// Quantitative verification (Teuber & Weigl): count the inputs of a small
/// numeric routine that lead to an assertion violation.  The routine mixes a
/// bit-vector input with floating-point arithmetic.
pub fn quantitative_verification(params: &GenParams) -> Instance {
    let mut rng = rng_of(params);
    let mut tm = TermManager::new();
    let w = params.width;
    let mut asserts = Vec::new();

    let input = tm.mk_var("input", Sort::BitVec(w));
    let projection = vec![input];

    // A chain of floating point accumulator updates; each step is gated by a
    // bit of the input, so the reachable final values depend on the input.
    let mut acc = tm.mk_var("acc_0", Sort::float32());
    for k in 0..params.scale {
        let step = tm.mk_var(&format!("step_{k}"), Sort::float32());
        // Steps are bounded: step_k <= acc_0 (keeps everything satisfiable).
        asserts.push(tm.mk_fp_le(step, acc).unwrap());
        let next = tm.mk_fp_add(acc, step).unwrap();
        let bit = k % w;
        let b = tm.mk_bv_extract(input, bit, bit).unwrap();
        let one = tm.mk_bv_const(1, 1);
        let taken = tm.mk_eq(b, one);
        let acc_next = tm.mk_var(&format!("acc_{}", k + 1), Sort::float32());
        let updated = tm.mk_fp_eq(acc_next, next).unwrap();
        let unchanged = tm.mk_fp_eq(acc_next, acc).unwrap();
        let ite = tm.mk_ite(taken, updated, unchanged).unwrap();
        asserts.push(ite);
        acc = acc_next;
    }
    // Assertion: the final accumulator stays below the initial one plus slack —
    // violated for many (but not all) inputs.  Also restrict the input range a
    // little so the count is not the full 2^w.
    let bound: u128 = (1u128 << w) - rng.random_range(1..(1u128 << (w - 2)));
    let c = tm.mk_bv_const(bound, w);
    asserts.push(tm.mk_bv_ult(input, c).unwrap());

    let name = format!(
        "quant_verif_s{}_w{}_{}",
        params.scale, params.width, params.seed
    );
    Instance {
        name,
        logic: Logic::QfBvfp,
        cluster: format!("qv_s{}_w{}", params.scale, params.width),
        tm,
        asserts,
        projection,
    }
}

// ---------------------------------------------------------------------------
// Application 4: quantification of information flow (QF_UFBV)
// ---------------------------------------------------------------------------

/// Information-flow quantification (Phan & Malacaria): count the observable
/// outputs of a program handling a secret, where parts of the computation
/// are abstracted as uninterpreted functions.
pub fn information_flow(params: &GenParams) -> Instance {
    let mut rng = rng_of(params);
    let mut tm = TermManager::new();
    let w = params.width;
    let mut asserts = Vec::new();

    let public = tm.mk_var("public", Sort::BitVec(w));
    let secret = tm.mk_var("secret", Sort::BitVec(w));
    let observable = tm.mk_var("observable", Sort::BitVec(w));
    let projection = vec![observable];

    // The sanitizer and the channel are uninterpreted.
    let sanitize = tm.declare_fun("sanitize", vec![Sort::BitVec(w)], Sort::BitVec(w));
    let channel = tm.declare_fun("channel", vec![Sort::BitVec(w)], Sort::BitVec(w));

    let mixed = tm.mk_bv_xor(public, secret).unwrap();
    let sanitized = tm.mk_apply(sanitize, vec![mixed]).unwrap();
    let sent = tm.mk_apply(channel, vec![sanitized]).unwrap();
    asserts.push(tm.mk_eq(observable, sent));

    for k in 0..params.scale {
        // A few side conditions relating repeated applications (gives the
        // Ackermann expansion something to do).
        let probe = tm.mk_bv_const(rng.random_range(0..(1u128 << w.min(63))), w);
        let s_probe = tm.mk_apply(sanitize, vec![probe]).unwrap();
        let cmp = tm.mk_bv_ule(s_probe, observable).unwrap();
        let tautology = tm.mk_true();
        asserts.push(tm.mk_or([cmp, tautology]));
        let _ = k;
    }
    // The secret is constrained to a plausible range; the public input to a
    // different one, keeping the observable count large but not full.
    let half = tm.mk_bv_const(1u128 << (w - 1), w);
    asserts.push(tm.mk_bv_ult(secret, half).unwrap());
    let low = tm.mk_bv_const(3, w);
    asserts.push(tm.mk_bv_ule(low, public).unwrap());

    let name = format!(
        "info_flow_s{}_w{}_{}",
        params.scale, params.width, params.seed
    );
    Instance {
        name,
        logic: Logic::QfUfbv,
        cluster: format!("if_s{}_w{}", params.scale, params.width),
        tm,
        asserts,
        projection,
    }
}

// ---------------------------------------------------------------------------
// The remaining Table I logics: array + float mixes
// ---------------------------------------------------------------------------

/// A sensor-log instance (QF_ABVFP): floating point sensor readings stored in
/// an array indexed by bit-vector timestamps; the projection is over the
/// timestamps that can hold an out-of-range reading.
pub fn sensor_log(params: &GenParams) -> Instance {
    let mut rng = rng_of(params);
    let mut tm = TermManager::new();
    let w = params.width;
    let mut asserts = Vec::new();

    let timestamp = tm.mk_var("timestamp", Sort::BitVec(w));
    let projection = vec![timestamp];
    let log_sort = Sort::array(Sort::BitVec(w), Sort::float32());
    let log = tm.mk_var("log", log_sort);

    let reading = tm.mk_select(log, timestamp).unwrap();
    let limit = tm.mk_var("limit", Sort::float32());
    // The reading at the projected timestamp exceeds the limit.
    asserts.push(tm.mk_fp_lt(limit, reading).unwrap());

    for k in 0..params.scale {
        let other_ts = tm.mk_bv_const(rng.random_range(0..(1u128 << w.min(63))), w);
        let other = tm.mk_select(log, other_ts).unwrap();
        // Other samples are within limits.
        asserts.push(tm.mk_fp_le(other, limit).unwrap());
        let _ = k;
    }
    // Timestamps are within the trace length.
    let trace_len = tm.mk_bv_const((1u128 << w) - (1u128 << (w - 3)), w);
    asserts.push(tm.mk_bv_ult(timestamp, trace_len).unwrap());

    let name = format!(
        "sensor_log_s{}_w{}_{}",
        params.scale, params.width, params.seed
    );
    Instance {
        name,
        logic: Logic::QfAbvfp,
        cluster: format!("slog_s{}_w{}", params.scale, params.width),
        tm,
        asserts,
        projection,
    }
}

/// The full mix (QF_ABVFPLRA): a hybrid controller with a lookup table
/// (array), a discrete mode word (bit-vector, projected), continuous plant
/// state (reals) and floating point measurements.
pub fn hybrid_controller(params: &GenParams) -> Instance {
    let mut rng = rng_of(params);
    let mut tm = TermManager::new();
    let w = params.width;
    let mut asserts = Vec::new();

    let mode = tm.mk_var("mode", Sort::BitVec(w));
    let projection = vec![mode];

    let table_sort = Sort::array(Sort::BitVec(4), Sort::BitVec(w));
    let table = tm.mk_var("gain_table", table_sort);
    let state = tm.mk_var("state", Sort::Real);
    let measurement = tm.mk_var("measurement", Sort::float32());

    // The controller gain is looked up by the low bits of the mode.
    let idx = tm.mk_bv_extract(mode, 3.min(w - 1), 0).unwrap();
    let idx = if w >= 4 {
        idx
    } else {
        tm.mk_bv_zero_extend(idx, 4 - w).unwrap()
    };
    let gain = tm.mk_select(table, idx).unwrap();
    // The gain must not saturate.
    let max_gain = tm.mk_bv_const((1u128 << w) - 2, w);
    asserts.push(tm.mk_bv_ult(gain, max_gain).unwrap());

    // Plant state stays in the safe envelope [0, 10].
    let zero = tm.mk_real_const(Rational::ZERO);
    let ten = tm.mk_real_const(Rational::from_int(10));
    asserts.push(tm.mk_real_le(zero, state).unwrap());
    asserts.push(tm.mk_real_le(state, ten).unwrap());

    // The measurement tracks the state within a tolerance (via fp.to_real).
    let meas_real = tm.mk_fp_to_real(measurement).unwrap();
    let tol = tm.mk_real_const(Rational::new(1, 2));
    let upper = tm.mk_real_add(vec![state, tol]).unwrap();
    asserts.push(tm.mk_real_le(meas_real, upper).unwrap());

    for k in 0..params.scale {
        // Mode-dependent envelope tightening: high modes force a calm plant.
        let cut: u128 = rng.random_range((1u128 << (w - 1))..(1u128 << w.min(63)));
        let c = tm.mk_bv_const(cut, w);
        let high_mode = tm.mk_bv_ule(c, mode).unwrap();
        let bound = tm.mk_real_const(Rational::from_int(5 + (k as i128 % 3)));
        let calm = tm.mk_real_le(state, bound).unwrap();
        asserts.push(tm.mk_implies(high_mode, calm).unwrap());
    }
    // Keep a dent in the projected space so the count is not exactly 2^w.
    let dent = tm.mk_bv_const(rng.random_range(0..(1u128 << (w - 2))), w);
    let eq = tm.mk_eq(mode, dent);
    asserts.push(tm.mk_not(eq));

    let name = format!(
        "hybrid_controller_s{}_w{}_{}",
        params.scale, params.width, params.seed
    );
    Instance {
        name,
        logic: Logic::QfAbvfplra,
        cluster: format!("hc_s{}_w{}", params.scale, params.width),
        tm,
        asserts,
        projection,
    }
}

/// Dispatches to the generator for a given Table I logic.
pub fn generate_for_logic(logic: Logic, params: &GenParams) -> Instance {
    match logic {
        Logic::QfAbvfplra => hybrid_controller(params),
        Logic::QfAbvfp => sensor_log(params),
        Logic::QfAbv => cfg_reachability(params),
        Logic::QfBvfplra => cps_robustness(params),
        Logic::QfBvfp => quantitative_verification(params),
        Logic::QfUfbv => information_flow(params),
        Logic::QfBv | Logic::Other => cfg_reachability(params),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pact::{pact_count, CounterConfig};

    fn all_generators(params: &GenParams) -> Vec<Instance> {
        vec![
            cps_robustness(params),
            cfg_reachability(params),
            quantitative_verification(params),
            information_flow(params),
            sensor_log(params),
            hybrid_controller(params),
        ]
    }

    #[test]
    fn generators_are_deterministic() {
        let p = GenParams::default();
        for (a, b) in all_generators(&p).iter().zip(all_generators(&p)) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.asserts.len(), b.asserts.len());
            assert_eq!(a.to_smtlib(), b.to_smtlib());
        }
    }

    #[test]
    fn generated_logics_are_labelled_correctly() {
        let p = GenParams {
            scale: 2,
            width: 6,
            seed: 3,
        };
        for inst in all_generators(&p) {
            assert!(
                inst.logic_is_consistent(),
                "instance {} does not match logic {}",
                inst.name,
                inst.logic
            );
            assert!(!inst.projection.is_empty());
            assert!(inst.projection_bits() > 0);
        }
    }

    #[test]
    fn every_logic_dispatches_to_a_generator() {
        let p = GenParams {
            scale: 1,
            width: 6,
            seed: 1,
        };
        for logic in Logic::TABLE_ONE {
            let inst = generate_for_logic(logic, &p);
            assert_eq!(inst.logic, logic);
        }
    }

    #[test]
    fn instances_are_satisfiable_and_countable() {
        // Every generator must produce an instance our counter can handle
        // end-to-end (this is the contract the benchmark harness relies on).
        let p = GenParams {
            scale: 1,
            width: 5,
            seed: 7,
        };
        let config = CounterConfig {
            iterations_override: Some(1),
            seed: 1,
            ..CounterConfig::default()
        };
        for mut inst in all_generators(&p) {
            let report = pact_count(&mut inst.tm, &inst.asserts, &inst.projection, &config)
                .unwrap_or_else(|e| panic!("{} failed: {e}", inst.name));
            assert!(
                report.outcome.value().map(|v| v > 0.0).unwrap_or(false),
                "instance {} did not produce a positive count: {:?}",
                inst.name,
                report.outcome
            );
        }
    }

    #[test]
    fn smtlib_exports_parse_back() {
        let p = GenParams::default();
        for inst in all_generators(&p) {
            let text = inst.to_smtlib();
            let mut tm = TermManager::new();
            let script = pact_ir::parser::parse_script(&mut tm, &text)
                .unwrap_or_else(|e| panic!("{}: {e}", inst.name));
            assert_eq!(script.asserts.len(), inst.asserts.len(), "{}", inst.name);
        }
    }
}
