//! CPS robustness quantification (the paper's first motivating application).
//!
//! Generates the automotive CPS attack-vector instance from `pact-benchgen`,
//! counts the viable attack vectors with all three hash families, and reports
//! how the configurations compare — a miniature of Table I on one instance.
//!
//! Run with: `cargo run --example cps_robustness --release`

use std::time::Duration;

use pact::{pact_count, CounterConfig, HashFamily};
use pact_benchgen::{cps_robustness, GenParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = GenParams {
        scale: 2,
        width: 8,
        seed: 2024,
    };
    let instance = cps_robustness(&params);
    println!("instance  : {}", instance.name);
    println!("logic     : {}", instance.logic);
    println!("projection: {} bits", instance.projection_bits());
    println!();

    for family in HashFamily::ALL {
        let mut tm = instance.tm.clone();
        let config = CounterConfig {
            family,
            seed: 7,
            iterations_override: Some(5),
            deadline: Some(Duration::from_secs(30)),
            ..CounterConfig::default()
        };
        let report = pact_count(&mut tm, &instance.asserts, &instance.projection, &config)?;
        println!(
            "pact_{:<6}: {:<18} oracle calls {:>5}  wall {:.2}s",
            family,
            report.outcome.to_string(),
            report.stats.oracle_calls,
            report.stats.wall_seconds
        );
    }
    println!();
    println!("A larger estimate means more viable attack vectors, i.e. a less");
    println!("robust controller configuration (Koley et al., §I-A of the paper).");
    Ok(())
}
