//! CPS robustness quantification (the paper's first motivating application).
//!
//! Generates the automotive CPS attack-vector instance from `pact-benchgen`,
//! declares it once as a counting [`Session`], counts the viable attack
//! vectors with all three hash families, and reports how the configurations
//! compare — a miniature of Table I on one instance.
//!
//! Run with: `cargo run --example cps_robustness --release`

use std::time::Duration;

use pact::{HashFamily, Session};
use pact_benchgen::{cps_robustness, GenParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = GenParams {
        scale: 2,
        width: 8,
        seed: 2024,
    };
    let instance = cps_robustness(&params);
    println!("instance  : {}", instance.name);
    println!("logic     : {}", instance.logic);
    println!("projection: {} bits", instance.projection_bits());
    println!();

    // The problem is declared once; each family is just a config override.
    let mut session = Session::builder(instance.tm.clone())
        .assert_all(&instance.asserts)
        .project_all(&instance.projection)
        .seed(7)
        .iterations(5)
        .deadline(Duration::from_secs(30))
        .build()?;

    for family in HashFamily::ALL {
        let config = session.config().clone().with_family(family);
        let report = session.count_with(&config)?;
        println!(
            "pact_{:<6}: {:<18} oracle calls {:>5}  wall {:.2}s",
            family,
            report.outcome.to_string(),
            report.stats.oracle_calls,
            report.stats.wall_seconds
        );
    }
    println!();
    println!("A larger estimate means more viable attack vectors, i.e. a less");
    println!("robust controller configuration (Koley et al., §I-A of the paper).");
    Ok(())
}
