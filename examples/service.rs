//! Counting as a service: push a small mixed workload through a
//! [`CountingService`] and watch it stream back.
//!
//! The service front-end is the batch-server shape of the session API:
//! declare a [`CountRequest`] per problem (formula, projection, backend,
//! `(ε, δ)`, optional deadline and priority), submit it to a long-lived
//! service running one counting pipeline per shard thread, and collect the
//! answer through the returned [`RequestHandle`] — blocking (`wait`),
//! polling (`try_result`), or event-by-event (`next_event`).  Admission is
//! bounded: a saturated queue rejects with a typed error instead of
//! buffering without limit.
//!
//! Run with: `cargo run --example service --release`

use std::time::Duration;

use pact::BackendSpec;
use pact_ir::{Sort, TermId, TermManager};
use pact_service::{CountRequest, CountingService, Priority, RequestEvent, ServiceConfig};

/// Declares `x >= bound` over a `width`-bit variable: a small saturating
/// counting problem whose difficulty scales with `width`.
fn problem(width: u32, bound: u128) -> (TermManager, TermId, TermId) {
    let mut tm = TermManager::new();
    let x = tm.mk_var("x", Sort::BitVec(width));
    let c = tm.mk_bv_const(bound, width);
    let f = tm.mk_bv_ule(c, x).expect("same-width comparison");
    (tm, f, x)
}

fn request(width: u32, bound: u128) -> CountRequest {
    let (tm, f, x) = problem(width, bound);
    CountRequest::new(tm)
        .assert(f)
        .project(x)
        .seed(42)
        .iterations(3)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two shard threads, each running its own session pipeline; the
    // admission queue holds at most 16 requests beyond the ones in flight.
    let service = CountingService::new(ServiceConfig {
        shards: 2,
        queue_capacity: 16,
    });

    // ---- A mixed batch: different backends, priorities and deadlines ----
    let mut batch = vec![
        ("incremental", service.submit(request(8, 16))?),
        (
            "cube (batch lane)",
            service.submit(
                request(9, 32)
                    .backend(BackendSpec::Cube {
                        depth: 2,
                        workers: 2,
                    })
                    .priority(Priority::Batch),
            )?,
        ),
        (
            "urgent",
            service.submit(request(8, 64).priority(Priority::Urgent))?,
        ),
        (
            "zero deadline",
            // A deadline of zero is consumed before the shard even starts:
            // the request comes back as a Timeout outcome, not an error.
            service.submit(request(8, 16).deadline(Duration::ZERO))?,
        ),
    ];

    // ---- Stream one request's event feed while the batch runs ----------
    // Every handle carries its own feed: Queued, Admitted { shard },
    // engine Progress events, then exactly one terminal event.
    let (label, handle) = &mut batch[0];
    println!("events for the {label} request:");
    loop {
        let event = handle.next_event().expect("feed ends with a terminal");
        match &event {
            RequestEvent::Progress(_) => {} // per-model/cell/round firehose
            other => println!("  {other:?}"),
        }
        if event.is_terminal() {
            break;
        }
    }

    // ---- Collect every answer -------------------------------------------
    println!("\nresults:");
    for (label, handle) in &mut batch {
        let report = handle.wait()?;
        println!(
            "  {label:<18} -> {} (shard {:?}, {:.4}s queued, {} oracle calls)",
            report.report.outcome,
            report.shard,
            report.queue_seconds,
            report.report.stats.oracle_calls,
        );
    }

    // ---- Mid-flight cancellation ----------------------------------------
    // A long count (2000 requested rounds) cancelled as soon as it makes
    // progress: the partial statistics come back like a deadline expiry.
    let mut long = service.submit(request(12, 2048).iterations(2000))?;
    long.wait_for_event(|e| matches!(e, RequestEvent::Progress(_)));
    long.cancel();
    let partial = long.wait()?;
    println!(
        "\ncancelled long count: {} after {} cells ({} oracle calls kept)",
        partial.report.outcome,
        partial.report.stats.cells_explored,
        partial.report.stats.oracle_calls
    );

    let metrics = service.metrics();
    println!(
        "\nservice metrics: {} submitted, {} rejected, served per shard {:?}",
        metrics.submitted, metrics.rejected, metrics.served_per_shard
    );

    // Graceful shutdown: drains nothing here (all requests resolved), joins
    // every shard thread, and leaves zero live threads behind.
    service.shutdown();
    Ok(())
}
