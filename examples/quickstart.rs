//! Quickstart: count the projected models of a small hybrid SMT formula.
//!
//! Builds the formula programmatically, runs `pact` with the `H_xor` family
//! and the paper's `(ε, δ) = (0.8, 0.2)`, and prints the estimate next to the
//! exact count from the `enum` baseline.
//!
//! Run with: `cargo run --example quickstart --release`

use pact::{enumerate_count, pact_count, relative_error, CounterConfig, HashFamily};
use pact_ir::{Rational, Sort, TermManager};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Build a hybrid formula -----------------------------------------
    // Discrete side: an 8-bit sensor reading `b` that must exceed 32.
    // Continuous side: a real-valued duty cycle `r` in (0, 1) that must stay
    // below b/256 (a linking constraint between the two domains).
    let mut tm = TermManager::new();
    let b = tm.mk_var("b", Sort::BitVec(8));
    let r = tm.mk_var("r", Sort::Real);

    let threshold = tm.mk_bv_const(32, 8);
    let discrete = tm.mk_bv_ule(threshold, b)?;

    let zero = tm.mk_real_const(Rational::ZERO);
    let one = tm.mk_real_const(Rational::ONE);
    let positive = tm.mk_real_lt(zero, r)?;
    let bounded = tm.mk_real_lt(r, one)?;

    let formula = vec![discrete, positive, bounded];
    let projection = vec![b];

    // ---- Exact reference -------------------------------------------------
    let exact = enumerate_count(
        &mut tm,
        &formula,
        &projection,
        10_000,
        &CounterConfig::fast(),
    )?;
    println!("enum (exact) : {}", exact.outcome);

    // ---- Approximate count with pact -------------------------------------
    let config = CounterConfig::default()
        .with_family(HashFamily::Xor)
        .with_seed(42);
    let config = CounterConfig {
        iterations_override: Some(9),
        ..config
    };
    let report = pact_count(&mut tm, &formula, &projection, &config)?;
    println!("pact_xor     : {}", report.outcome);
    println!(
        "oracle calls : {}, cells explored: {}, wall time: {:.2}s",
        report.stats.oracle_calls, report.stats.cells_explored, report.stats.wall_seconds
    );

    if let (Some(exact_value), Some(estimate)) = (exact.outcome.value(), report.outcome.value()) {
        if let Some(err) = relative_error(exact_value, estimate) {
            println!("observed error e = {err:.3} (theoretical bound ε = 0.8)");
        }
    }
    Ok(())
}
