//! Quickstart: count the projected models of a small hybrid SMT formula,
//! then watch (and abort) a long-running count.
//!
//! Part 1 declares a hybrid formula as a counting [`Session`], compares the
//! `pact` estimate against the exact `enum` baseline, and re-counts under a
//! second hash family without re-declaring the problem.  Part 2 attaches a
//! progress observer to a deliberately long count and cancels it from inside
//! the observer after a handful of rounds — the pattern a service front-end
//! or an interactive UI uses to keep long counts responsive.
//!
//! Run with: `cargo run --example quickstart --release`

use pact::{relative_error, CancellationToken, HashFamily, ProgressEvent, Session};
use pact_ir::{Rational, Sort, TermManager};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Part 1: declare once, count many ways --------------------------
    // Discrete side: an 8-bit sensor reading `b` that must exceed 32.
    // Continuous side: a real-valued duty cycle `r` in (0, 1).
    let mut tm = TermManager::new();
    let b = tm.mk_var("b", Sort::BitVec(8));
    let r = tm.mk_var("r", Sort::Real);

    let threshold = tm.mk_bv_const(32, 8);
    let discrete = tm.mk_bv_ule(threshold, b)?;

    let zero = tm.mk_real_const(Rational::ZERO);
    let one = tm.mk_real_const(Rational::ONE);
    let positive = tm.mk_real_lt(zero, r)?;
    let bounded = tm.mk_real_lt(r, one)?;

    let mut session = Session::builder(tm)
        .assert_all(&[discrete, positive, bounded])
        .project(b)
        .family(HashFamily::Xor)
        .seed(42)
        .iterations(9)
        .build()?;

    // Exact reference from the same declared problem.
    let exact = session.enumerate(10_000)?;
    println!("enum (exact) : {}", exact.outcome);

    // Approximate count with the paper's (ε, δ) = (0.8, 0.2).
    let report = session.count()?;
    println!("pact_xor     : {}", report.outcome);
    println!(
        "oracle calls : {}, cells explored: {}, wall time: {:.2}s",
        report.stats.oracle_calls, report.stats.cells_explored, report.stats.wall_seconds
    );

    if let (Some(exact_value), Some(estimate)) = (exact.outcome.value(), report.outcome.value()) {
        if let Some(err) = relative_error(exact_value, estimate) {
            println!("observed error e = {err:.3} (theoretical bound ε = 0.8)");
        }
    }

    // Same problem, different hash family: no re-declaration needed.
    let prime = session.config().clone().with_family(HashFamily::Prime);
    println!("pact_prime   : {}", session.count_with(&prime)?.outcome);

    // ---- Part 2: progress reporting + cancellation ----------------------
    // A deliberately long count: 2048 saturating models and 500 requested
    // rounds.  The observer prints round completions and pulls the plug
    // after five of them; the partial work comes back in the report.
    let mut tm = TermManager::new();
    let x = tm.mk_var("x", Sort::BitVec(12));
    let c = tm.mk_bv_const(2048, 12);
    let f = tm.mk_bv_ule(c, x)?;

    let token = CancellationToken::new();
    let trigger = token.clone();
    let mut long_session = Session::builder(tm)
        .assert(f)
        .project(x)
        .seed(1)
        .iterations(500)
        .cancellation(token)
        .on_progress(move |event| {
            if let ProgressEvent::Round { round, estimate } = event {
                println!("  round {round:>3} finished: estimate {estimate:?}");
                if *round >= 4 {
                    println!("  five rounds are enough — cancelling");
                    trigger.cancel();
                }
            }
        })
        .build()?;

    println!("\nlong count with progress + cancellation:");
    let partial = long_session.count()?;
    println!(
        "cancelled after {} of 500 rounds: {} ({} oracle calls kept)",
        partial.stats.iterations, partial.outcome, partial.stats.oracle_calls
    );
    Ok(())
}
