//! A wire-protocol client: talk SMT-LIB to the counting service over TCP.
//!
//! Starts an in-process `CountingService`, exposes it on an ephemeral TCP
//! port exactly like `pact-serve --listen`, then plays a small SMT-LIB
//! session against it: two counts multiplexed on one connection (the cheap
//! one answers while the expensive one is still running), plus a protocol
//! error that the connection survives.  Finally it re-runs one request
//! through a direct [`pact::Session`] to show the wire answer is
//! bit-identical.
//!
//! Run with: `cargo run --example wire_client --release`

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};

use pact::{CounterConfig, ParallelConfig, Session};
use pact_ir::{Sort, TermManager};
use pact_service::{wire, CountingService, ServiceConfig};

const SCRIPT: &str = "\
(set-logic QF_BV)
(declare-const x (_ BitVec 8))
(declare-const y (_ BitVec 8))
(assert (bvule #x10 x))
(set-option :seed 42)
(set-option :iterations 3)
(count x)
(count x y)
(count z)
(exit)
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Server side: a 2-shard service behind an ephemeral TCP port.
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    std::thread::spawn(move || {
        let service = CountingService::new(ServiceConfig {
            shards: 2,
            queue_capacity: 16,
        });
        let _ = wire::serve_listener(&service, &listener);
    });

    // Client side: plain line-oriented TCP, no pact types needed.
    println!("connecting to {addr}");
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(SCRIPT.as_bytes())?;
    stream.flush()?;

    println!("--- session transcript ---");
    let mut estimates = Vec::new();
    let mut results = 0;
    let reader = BufReader::new(stream.try_clone()?);
    for line in reader.lines() {
        let line = line?;
        println!("{line}");
        if line.contains("\"kind\": \"count\"") {
            results += 1;
            if let Some(value) = field(&line, "estimate") {
                estimates.push(value);
            }
        }
        if line.contains("\"kind\": \"error\"") {
            // The bad `(count z)` answered with a positioned error; the
            // two well-formed counts still resolve below.
            assert!(line.contains("\"line\""), "errors carry positions");
        }
        // Both counts answered: stop reading and let the server move on.
        if results == 2 {
            break;
        }
    }
    drop(stream);

    // The same first count, directly: bit-identical by construction.
    let mut tm = TermManager::new();
    let x = tm.mk_var("x", Sort::BitVec(8));
    let c = tm.mk_bv_const(0x10, 8);
    let f = tm.mk_bv_ule(c, x)?;
    let mut session = Session::builder(tm)
        .assert(f)
        .project(x)
        .config(CounterConfig {
            seed: 42,
            iterations_override: Some(3),
            parallel: ParallelConfig { threads: 1 },
            ..CounterConfig::default()
        })
        .build()?;
    let direct = session.count()?;
    println!("--- direct session ---");
    println!(
        "direct outcome: {} vs wire estimate: {}",
        direct.outcome,
        estimates.first().map(String::as_str).unwrap_or("?")
    );
    Ok(())
}

/// Pulls one numeric field out of a flat wire JSON line.
fn field(line: &str, key: &str) -> Option<String> {
    let pattern = format!("\"{key}\": ");
    let start = line.find(&pattern)? + pattern.len();
    let rest = &line[start..];
    let end = rest.find([',', '}'])?;
    Some(rest[..end].trim().to_string())
}
