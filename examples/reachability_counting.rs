//! Counting reachable program paths (the paper's second motivating
//! application): how many inputs of a small control-flow graph reach the
//! interesting block, counted exactly, approximately, and with the CDM
//! baseline — all three from one declared [`Session`].
//!
//! Run with: `cargo run --example reachability_counting --release`

use std::time::Duration;

use pact::{HashFamily, Session};
use pact_benchgen::{cfg_reachability, GenParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let instance = cfg_reachability(&GenParams {
        scale: 3,
        width: 9,
        seed: 77,
    });
    println!("instance: {} ({})", instance.name, instance.logic);
    println!("SMT-LIB export of the instance:\n");
    println!("{}", instance.to_smtlib());

    let mut session = Session::builder(instance.tm.clone())
        .assert_all(&instance.asserts)
        .project_all(&instance.projection)
        .family(HashFamily::Xor)
        .iterations(7)
        .deadline(Duration::from_secs(30))
        .seed(3)
        .build()?;

    // Exact reference (small enough to enumerate).
    let exact = session.enumerate(50_000)?;
    println!("enum (exact)  : {}", exact.outcome);

    // pact with the winning configuration.
    let approx = session.count()?;
    println!("pact_xor      : {}", approx.outcome);

    // The CDM baseline on the same instance (note the call count).
    let cdm = session.count_cdm()?;
    println!("CDM baseline  : {}", cdm.outcome);
    println!(
        "oracle calls  : pact_xor {} vs CDM {}",
        approx.stats.oracle_calls, cdm.stats.oracle_calls
    );
    Ok(())
}
