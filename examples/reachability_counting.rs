//! Counting reachable program paths (the paper's second motivating
//! application): how many inputs of a small control-flow graph reach the
//! interesting block, counted exactly and approximately.
//!
//! Run with: `cargo run --example reachability_counting --release`

use std::time::Duration;

use pact::{cdm_count, enumerate_count, pact_count, CounterConfig, HashFamily};
use pact_benchgen::{cfg_reachability, GenParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let instance = cfg_reachability(&GenParams {
        scale: 3,
        width: 9,
        seed: 77,
    });
    println!("instance: {} ({})", instance.name, instance.logic);
    println!("SMT-LIB export of the instance:\n");
    println!("{}", instance.to_smtlib());

    let budget = Duration::from_secs(30);

    // Exact reference (small enough to enumerate).
    let mut tm = instance.tm.clone();
    let exact = enumerate_count(
        &mut tm,
        &instance.asserts,
        &instance.projection,
        50_000,
        &CounterConfig::default().with_deadline(budget),
    )?;
    println!("enum (exact)  : {}", exact.outcome);

    // pact with the winning configuration.
    let mut tm = instance.tm.clone();
    let config = CounterConfig {
        family: HashFamily::Xor,
        iterations_override: Some(7),
        deadline: Some(budget),
        seed: 3,
        ..CounterConfig::default()
    };
    let approx = pact_count(&mut tm, &instance.asserts, &instance.projection, &config)?;
    println!("pact_xor      : {}", approx.outcome);

    // The CDM baseline on the same instance (note the call count).
    let mut tm = instance.tm.clone();
    let cdm = cdm_count(&mut tm, &instance.asserts, &instance.projection, &config)?;
    println!("CDM baseline  : {}", cdm.outcome);
    println!(
        "oracle calls  : pact_xor {} vs CDM {}",
        approx.stats.oracle_calls, cdm.stats.oracle_calls
    );
    Ok(())
}
