//! Counting an SMT-LIB 2 input: the command-line workflow of the original
//! `pact` tool.  Reads a script (from the file given as the first argument,
//! or a built-in hybrid example), takes the projection set from the
//! `(set-info :projection (...))` annotation, and prints the estimate.
//!
//! Run with: `cargo run --example smtlib_counting --release [file.smt2]`

use pact::{HashFamily, Session};
use pact_ir::{parser, TermManager};

const BUILTIN: &str = r#"
(set-logic QF_BVFPLRA)
(declare-fun duty () (_ BitVec 10))
(declare-fun temp () Real)
(declare-fun gain () (_ FloatingPoint 8 24))
(set-info :projection (duty))
; the duty cycle must be in the operating window
(assert (bvule (_ bv96 10) duty))
(assert (bvult duty (_ bv840 10)))
; the temperature stays within limits and depends on the duty cycle window
(assert (<= 0.0 temp))
(assert (< temp 85.5))
; measurement gain is bounded (floating point, relaxed to reals)
(assert (fp.leq gain ((_ to_fp 8 24) 2.0)))
(check-sat)
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let text = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(path)?,
        None => BUILTIN.to_string(),
    };

    let mut tm = TermManager::new();
    let script = parser::parse_script(&mut tm, &text)?;
    if script.projection.is_empty() {
        return Err("the script needs a (set-info :projection (...)) annotation".into());
    }
    println!(
        "logic {}, {} assertions, projection over {} variable(s)",
        script.logic,
        script.asserts.len(),
        script.projection.len()
    );

    let mut session = Session::builder(tm)
        .assert_all(&script.asserts)
        .project_all(&script.projection)
        .family(HashFamily::Xor)
        .iterations(9)
        .seed(1)
        .build()?;
    let report = session.count()?;
    println!("projected model count: {}", report.outcome);
    println!(
        "(oracle calls {}, cells {}, {:.2}s)",
        report.stats.oracle_calls, report.stats.cells_explored, report.stats.wall_seconds
    );
    Ok(())
}
