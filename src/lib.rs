//! Umbrella crate of the `pact` reproduction workspace.
//!
//! The actual functionality lives in the member crates; this crate exists so
//! that the repository-level `examples/` and `tests/` directories have a
//! package to belong to, and it re-exports the public surface a downstream
//! user typically needs:
//!
//! * [`pact`] — the approximate projected model counter (the paper's
//!   contribution), plus the CDM baseline and the exact enumerator, fronted
//!   by the [`Session`] API;
//! * [`pact_ir`] — the term language and SMT-LIB parser/printer;
//! * [`pact_solver`] — the SMT oracle ([`Oracle`] trait + `Context`
//!   reference implementation);
//! * [`pact_hash`] — the hash families;
//! * [`pact_service`] — the counting-as-a-service batch server
//!   ([`CountingService`]);
//! * [`pact_benchgen`] — the workload generators.
//!
//! See `README.md` for a tour, `DESIGN.md` for the paper-to-code map, and
//! `EXPERIMENTS.md` for how the evaluation is regenerated.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use pact;
pub use pact_benchgen;
pub use pact_hash;
pub use pact_ir;
pub use pact_service;
pub use pact_solver;

// The session surface, re-exported flat for downstream convenience: most
// users need exactly these names.
pub use pact::{
    CancellationToken, ConfigError, CountError, CountOutcome, CountReport, CountResult,
    CounterConfig, Oracle, OracleFactory, Progress, ProgressEvent, Session, SessionBuilder,
};
pub use pact_service::{CountRequest, CountingService, RequestHandle, ServiceConfig};
