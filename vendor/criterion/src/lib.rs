//! A small, dependency-free shim of the `criterion` benchmarking crate.
//!
//! Bench targets in this workspace use `criterion_group!`/`criterion_main!`,
//! benchmark groups with `sample_size`/`measurement_time`, `bench_function`
//! and `bench_with_input`.  This shim reproduces that surface with a plain
//! wall-clock sampler:
//!
//! * under `cargo bench` (cargo passes `--bench`) every benchmark is timed
//!   for `sample_size` samples within `measurement_time` and a median /
//!   min / max line is printed;
//! * under `cargo test` (no `--bench` argument) every benchmark body runs
//!   exactly once, so benches double as smoke tests — the same contract real
//!   criterion implements.
//!
//! No statistical analysis, plotting or HTML reports; numbers print to
//! stdout, one line per benchmark.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier; re-exported for API compatibility.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Identifier of one benchmark within a group: a function name plus a
/// parameter rendering, printed as `function/parameter`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        BenchmarkId { id: id.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// The benchmark driver handed to every `criterion_group!` target.
#[derive(Debug)]
pub struct Criterion {
    /// `true` under `cargo bench`; `false` under `cargo test`, where every
    /// benchmark runs exactly once as a smoke test.
    measure: bool,
    /// Substring filter from the command line (`cargo bench -- <filter>`);
    /// benchmarks whose `group/id` does not contain it are skipped.
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut measure = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            if arg == "--bench" {
                measure = true;
            } else if !arg.starts_with('-') {
                filter = Some(arg);
            }
        }
        Criterion { measure, filter }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
        }
    }
}

/// A group of benchmarks sharing a name and sampling settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the time budget per benchmark; sampling stops early when it is
    /// exhausted.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        if let Some(filter) = &self.criterion.filter {
            if !format!("{}/{}", self.name, id.id).contains(filter.as_str()) {
                return self;
            }
        }
        let mut bencher = Bencher {
            samples: Vec::new(),
            measure: self.criterion.measure,
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
        };
        f(&mut bencher);
        bencher.report(&self.name, &id.id);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(&mut self) {}
}

/// Times closures on behalf of one benchmark.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    measure: bool,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher {
    /// Calls `routine` repeatedly, timing each call (or exactly once in test
    /// mode).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if !self.measure {
            black_box(routine());
            return;
        }
        let budget_start = Instant::now();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            if budget_start.elapsed() >= self.measurement_time {
                break;
            }
        }
    }

    fn report(&self, group: &str, id: &str) {
        if !self.measure {
            println!("{group}/{id}: ok (test mode, 1 iteration)");
            return;
        }
        if self.samples.is_empty() {
            println!("{group}/{id}: no samples collected");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        let max = sorted[sorted.len() - 1];
        println!(
            "{group}/{id}: median {median:?} (min {min:?}, max {max:?}, {} samples)",
            sorted.len()
        );
    }
}

/// Declares a group function that runs each listed benchmark target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(criterion: &mut $crate::Criterion) {
            $($target(criterion);)+
        }
    };
}

/// Declares `main` for a bench binary built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_ids_render_as_function_slash_parameter() {
        let id = BenchmarkId::new("family", "w8");
        assert_eq!(id.id, "family/w8");
        let from_str: BenchmarkId = "plain".into();
        assert_eq!(from_str.id, "plain");
    }

    #[test]
    fn test_mode_runs_each_body_once() {
        let mut criterion = Criterion {
            measure: false,
            filter: None,
        };
        let mut group = criterion.benchmark_group("g");
        let mut runs = 0;
        group.bench_function("once", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 1);
    }

    #[test]
    fn measure_mode_collects_samples() {
        let mut criterion = Criterion {
            measure: true,
            filter: None,
        };
        let mut group = criterion.benchmark_group("g");
        group.sample_size(5);
        group.measurement_time(Duration::from_secs(1));
        let mut runs = 0u32;
        group.bench_with_input(BenchmarkId::new("n", 1), &3u32, |b, &x| {
            b.iter(|| runs += x)
        });
        group.finish();
        assert!(runs >= 3, "at least one sample must run");
    }
}
