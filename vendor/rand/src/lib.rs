//! A small, deterministic, dependency-free stand-in for the `rand` crate.
//!
//! The workspace builds in environments without registry access, so the
//! subset of `rand` the counter actually uses is vendored here:
//!
//! * [`rngs::StdRng`] — a fixed, seedable PRNG (xoshiro256++ seeded through
//!   SplitMix64);
//! * [`SeedableRng::seed_from_u64`] — the only construction path the
//!   workspace uses;
//! * [`RngExt`] — `random::<T>()` and `random_range(..)` for the primitive
//!   integer types and ranges the hash families and generators draw from.
//!
//! Determinism is load-bearing: the counting algorithms promise bit-identical
//! results for a fixed seed regardless of thread count, so the stream
//! produced by [`rngs::StdRng`] must never depend on platform, process state
//! or global entropy.  Everything here is pure integer arithmetic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::{Range, RangeInclusive};

/// Random number generators.
pub mod rngs {
    /// A deterministic pseudo-random generator (xoshiro256++).
    ///
    /// Statistical quality is far beyond what hashing-based counting needs,
    /// and the implementation is a handful of rotates and xors, so it is also
    /// fast enough for the hot generation loops.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// Builds the generator from a full 256-bit state expanded from
        /// `seed` with SplitMix64 (the reference seeding procedure).
        pub(crate) fn from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// The next 64 uniformly distributed bits.
        pub(crate) fn next_u64_impl(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.next_u64_impl()
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng::from_u64(seed)
        }
    }
}

/// The raw bit source every generator implements.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 128 uniformly distributed bits.
    fn next_u128(&mut self) -> u128 {
        (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())
    }
}

/// Deterministic seeding; the workspace only ever seeds from a `u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from an `RngCore` (`rand`'s `Standard`
/// distribution, reduced to what the workspace samples).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u128()
    }
}

impl Standard for i128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u128() as i128
    }
}

/// Ranges a value can be drawn uniformly from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws a uniform value below `span` (`span > 0`) by 128-bit rejection
/// sampling, so every bound the workspace uses (up to full `u128` ranges) is
/// exact and unbiased.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u128() & (span - 1);
    }
    // Rejection zone: the incomplete final copy of [0, span).
    let zone = u128::MAX - (u128::MAX % span);
    loop {
        let draw = rng.next_u128();
        if draw < zone {
            return draw % span;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                // Width of the range, computed in the unsigned counterpart so
                // signed ranges spanning zero cannot overflow.
                let span = self.end.wrapping_sub(self.start) as $u as u128;
                let offset = uniform_below(rng, span) as $u as $t;
                self.start.wrapping_add(offset)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = end.wrapping_sub(start) as $u as u128;
                if span == <$u>::MAX as u128 {
                    return rng.next_u128() as $u as $t;
                }
                let offset = uniform_below(rng, span + 1) as $u as $t;
                start.wrapping_add(offset)
            }
        }
    )*};
}
impl_sample_range!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, u128 => u128, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, i128 => u128, isize => usize
);

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait RngExt: RngCore {
    /// Draws one uniformly distributed value of type `T`.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws one value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        let differs = (0..10).any(|_| a.random::<u64>() != c.random::<u64>());
        assert!(differs, "different seeds produced identical streams");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u128 = rng.random_range(10u128..17);
            assert!((10..17).contains(&v));
            let w: i8 = rng.random_range(-4i8..=4);
            assert!((-4..=4).contains(&w));
            let z: usize = rng.random_range(0usize..3);
            assert!(z < 3);
        }
    }

    #[test]
    fn all_values_of_a_small_range_are_hit() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.random_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s), "sampler misses values: {seen:?}");
    }

    #[test]
    fn bool_draws_are_balanced() {
        let mut rng = StdRng::seed_from_u64(3);
        let trues = (0..1000).filter(|_| rng.random::<bool>()).count();
        assert!((300..=700).contains(&trues), "bias: {trues}/1000 true");
    }
}
