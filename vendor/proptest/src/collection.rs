//! Collection strategies (`proptest::collection::vec`).

use core::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::RngExt;

use crate::strategy::Strategy;

/// A range of collection sizes; built from the same literals real proptest
/// accepts where the workspace uses them (a fixed size, `a..b`, `a..=b`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    /// Smallest allowed length (inclusive).
    pub min: usize,
    /// Largest allowed length (inclusive).
    pub max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from a [`SizeRange`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.random_range(self.size.min..=self.size.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Returns a strategy producing vectors of values drawn from `element`, with
/// lengths drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
