//! A small, dependency-free shim of the `proptest` crate.
//!
//! The workspace's property tests use a narrow slice of proptest's API —
//! the [`proptest!`] macro, integer-range and tuple strategies,
//! [`collection::vec`], [`any`], `prop_map` and the `prop_assert*` macros —
//! and this crate provides exactly that slice so the tests build without
//! registry access.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * inputs are drawn from a fixed-seed deterministic RNG, so runs are
//!   reproducible (and identical in CI and locally);
//! * failing cases are reported by the standard panic message without
//!   shrinking;
//! * strategies generate values directly instead of building value trees.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::{Arbitrary, Strategy};

/// Returns the canonical strategy for `T` (uniform over the whole domain).
pub fn any<T: Arbitrary>() -> strategy::Any<T> {
    strategy::Any::new()
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::strategy::{Arbitrary, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property; failures panic with the generated
/// inputs visible in the standard test output.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_eq!($left, $right, $($fmt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_ne!($left, $right, $($fmt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that draws `cases` inputs from its strategies and runs
/// the body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr) ) => {};
    ( ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut runner = $crate::test_runner::TestRunner::new(config, stringify!($name));
            for _case in 0..runner.cases() {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), runner.rng());)+
                $body
            }
        }
        $crate::__proptest_impl!{ ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(a in -5i32..5, b in 1u8..=9, c in any::<bool>()) {
            prop_assert!((-5..5).contains(&a));
            prop_assert!((1..=9).contains(&b));
            let _ = c;
        }

        #[test]
        fn vec_lengths_respect_the_size_range(
            v in crate::collection::vec((0usize..4, any::<bool>()), 2..6)
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for (x, _) in v {
                prop_assert!(x < 4);
            }
        }

        #[test]
        fn prop_map_transforms_values(n in (0u32..10).prop_map(|x| x * 2)) {
            prop_assert_eq!(n % 2, 0);
            prop_assert!(n < 20);
        }
    }
}
