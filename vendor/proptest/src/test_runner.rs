//! The (much simplified) test runner: case counts and the input RNG.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of inputs drawn per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate's default; individual suites usually lower it.
        ProptestConfig { cases: 256 }
    }
}

/// Drives one property: owns the case budget and the input RNG.
///
/// The RNG is seeded from the property's name, so every property sees a
/// stable input stream across runs and machines (full reproducibility in
/// exchange for proptest's persistence files).
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
    rng: StdRng,
}

impl TestRunner {
    /// Creates the runner for the named property.
    pub fn new(config: ProptestConfig, name: &str) -> Self {
        // FNV-1a over the property name: stable, dependency-free.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x100_0000_01b3);
        }
        TestRunner {
            config,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Number of inputs to draw.
    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    /// The input RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}
