//! Value-generation strategies (the shim's replacement for proptest's
//! value trees).

use core::marker::PhantomData;
use core::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::RngExt;

/// A recipe for generating values of an associated type.
///
/// Unlike real proptest there is no shrinking: a strategy simply draws a
/// value from the runner's RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Returns a strategy producing `f(value)` for every generated `value`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a canonical strategy, used through [`crate::any`].
pub trait Arbitrary: Sized {
    /// Draws one uniformly distributed value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.random::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(bool, u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

/// Strategy returned by [`crate::any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: PhantomData<fn() -> T>,
}

impl<T> Any<T> {
    pub(crate) fn new() -> Self {
        Any {
            _marker: PhantomData,
        }
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}
