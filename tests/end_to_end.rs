//! Cross-crate integration tests: SMT-LIB input → oracle → counter, checked
//! against brute-force ground truth computed with the IR evaluator.

use std::collections::HashMap;

use pact::{
    cdm_count, enumerate_count, pact_count, relative_error, CountOutcome, CounterConfig, HashFamily,
};
use pact_benchgen::{paper_suite, SuiteParams};
use pact_ir::{parser, BvValue, Sort, TermManager, Value};

/// Brute-force projected count of a pure-bitvector formula with a single
/// projected variable, using the IR evaluator as ground truth.
fn brute_force_count(tm: &TermManager, formula: &[pact_ir::TermId], x: pact_ir::TermId) -> u64 {
    let width = tm.sort(x).bv_width().expect("bitvector projection");
    let mut count = 0;
    for value in 0..(1u128 << width) {
        let mut asg = HashMap::new();
        asg.insert(x, Value::Bv(BvValue::new(value, width)));
        let holds = formula
            .iter()
            .all(|&f| tm.eval(f, &asg) == Some(Value::Bool(true)));
        if holds {
            count += 1;
        }
    }
    count
}

#[test]
fn smtlib_script_is_counted_end_to_end() {
    let text = r#"
        (set-logic QF_BVFPLRA)
        (declare-fun cmd () (_ BitVec 7))
        (declare-fun level () Real)
        (set-info :projection (cmd))
        (assert (bvule (_ bv16 7) cmd))
        (assert (bvult cmd (_ bv76 7)))
        (assert (and (<= 0.0 level) (< level 4.5)))
    "#;
    let mut tm = TermManager::new();
    let script = parser::parse_script(&mut tm, text).unwrap();
    let report = pact_count(
        &mut tm,
        &script.asserts,
        &script.projection,
        &CounterConfig::fast().with_seed(3),
    )
    .unwrap();
    // 16..=75 → 60 projected models, below the threshold, so exact.
    assert_eq!(report.outcome, CountOutcome::Exact(60));
}

#[test]
fn exact_path_matches_brute_force_on_random_intervals() {
    // Pure-BV formulas small enough for exhaustive ground truth.
    for seed in 0..5u64 {
        let mut tm = TermManager::new();
        let width = 6;
        let x = tm.mk_var("x", Sort::BitVec(width));
        let lo = (seed * 7 + 3) % 40;
        let hi = lo + 13 + seed * 3;
        let lo_c = tm.mk_bv_const(lo as u128, width);
        let hi_c = tm.mk_bv_const(hi.min(63) as u128, width);
        let f1 = tm.mk_bv_ule(lo_c, x).unwrap();
        let f2 = tm.mk_bv_ult(x, hi_c).unwrap();
        let formula = vec![f1, f2];
        let expected = brute_force_count(&tm, &formula, x);
        let report = pact_count(
            &mut tm,
            &formula,
            &[x],
            &CounterConfig::fast().with_seed(seed),
        )
        .unwrap();
        assert_eq!(
            report.outcome,
            CountOutcome::Exact(expected),
            "seed {seed}: lo {lo} hi {hi}"
        );
    }
}

#[test]
fn approximate_estimates_respect_the_error_bound_on_known_counts() {
    // 8-bit x restricted to three-quarters of the space: 192 models,
    // saturating the threshold so the hashing path runs.
    let mut tm = TermManager::new();
    let x = tm.mk_var("x", Sort::BitVec(8));
    let c = tm.mk_bv_const(64, 8);
    let f = tm.mk_bv_ule(c, x).unwrap();
    let exact = 192.0;
    for family in [HashFamily::Xor, HashFamily::Prime, HashFamily::Shift] {
        let config = CounterConfig {
            family,
            seed: 19,
            iterations_override: Some(9),
            ..CounterConfig::default()
        };
        let report = pact_count(&mut tm, &[f], &[x], &config).unwrap();
        let estimate = report.outcome.value().expect("a count");
        let err = relative_error(exact, estimate).expect("positive counts");
        // ε = 0.8 with reduced iterations: allow a little slack beyond the
        // theoretical bound but catch gross mis-estimation.
        assert!(
            err <= 1.2,
            "family {family}: estimate {estimate} vs exact {exact} (error {err:.3})"
        );
    }
}

#[test]
fn enum_and_pact_agree_on_generated_instances() {
    let suite = paper_suite(&SuiteParams {
        per_logic: 1,
        min_width: 5,
        max_width: 5,
        max_per_cluster: 5,
        seed: 13,
    });
    for instance in &suite {
        let mut tm = instance.tm.clone();
        let exact = enumerate_count(
            &mut tm,
            &instance.asserts,
            &instance.projection,
            5_000,
            &CounterConfig::fast(),
        )
        .unwrap();
        let exact_value = match exact.outcome {
            CountOutcome::Exact(n) => n as f64,
            CountOutcome::Unsatisfiable => 0.0,
            other => panic!("{}: enum gave {other:?}", instance.name),
        };
        let mut tm = instance.tm.clone();
        let report = pact_count(
            &mut tm,
            &instance.asserts,
            &instance.projection,
            &CounterConfig::fast().with_seed(23),
        )
        .unwrap();
        let estimate = report.outcome.value().expect("count available");
        if exact_value == 0.0 {
            assert_eq!(estimate, 0.0, "{}", instance.name);
        } else {
            let err = relative_error(exact_value, estimate).expect("positive counts");
            assert!(
                err <= 0.8,
                "{}: pact {estimate} vs enum {exact_value} (error {err:.3})",
                instance.name
            );
        }
    }
}

#[test]
fn cdm_baseline_runs_on_a_hybrid_instance() {
    let suite = paper_suite(&SuiteParams {
        per_logic: 1,
        min_width: 5,
        max_width: 5,
        max_per_cluster: 5,
        seed: 29,
    });
    // Pick the QF_BVFPLRA (CPS) instance: hybrid with reals.
    let instance = suite
        .iter()
        .find(|i| i.logic == pact_ir::logic::Logic::QfBvfplra)
        .expect("suite covers every logic");
    let mut tm = instance.tm.clone();
    let config = CounterConfig {
        iterations_override: Some(2),
        seed: 5,
        ..CounterConfig::default()
    };
    let report = cdm_count(&mut tm, &instance.asserts, &instance.projection, &config).unwrap();
    assert!(report.outcome.is_solved());
    assert!(report.stats.oracle_calls > 0);
}

#[test]
fn projected_count_ignores_continuous_variables() {
    // The same discrete constraint with and without a continuous side
    // condition must produce the same projected count (the continuous part
    // is satisfiable for every projected assignment).
    let mut tm = TermManager::new();
    let b = tm.mk_var("b", Sort::BitVec(6));
    let r = tm.mk_var("r", Sort::Real);
    let c = tm.mk_bv_const(40, 6);
    let discrete = tm.mk_bv_ult(b, c).unwrap();
    let zero = tm.mk_real_const(pact_ir::Rational::ZERO);
    let continuous = tm.mk_real_lt(zero, r).unwrap();

    let just_discrete = pact_count(
        &mut tm,
        &[discrete],
        &[b],
        &CounterConfig::fast().with_seed(1),
    )
    .unwrap();
    let hybrid = pact_count(
        &mut tm,
        &[discrete, continuous],
        &[b],
        &CounterConfig::fast().with_seed(1),
    )
    .unwrap();
    assert_eq!(just_discrete.outcome, hybrid.outcome);
    assert_eq!(just_discrete.outcome, CountOutcome::Exact(40));
}
