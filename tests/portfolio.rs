//! Portfolio-backend integration: cancellation must terminate every racing
//! worker (no thread leak), and the work of cancelled losers must stay in
//! the merged accounting.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use pact::{BackendSpec, CancellationToken, CountOutcome, OracleFactory, ProgressEvent, Session};
use pact_ir::{Sort, TermManager};
use pact_solver::{PortfolioContext, SolverConfig};

/// A saturating instance big enough that a count has work to cancel.
fn saturating_session_builder(width: u32) -> pact::SessionBuilder {
    let mut tm = TermManager::new();
    let x = tm.mk_var("x", Sort::BitVec(width));
    let c = tm.mk_bv_const(16, width);
    let f = tm.mk_bv_ule(c, x).unwrap();
    Session::builder(tm).assert(f).project(x).seed(1)
}

/// A portfolio factory whose every oracle shares one live-worker probe, so
/// the test can observe worker threads across all the oracles a count
/// builds (base + one per round, across both scheduler threads).
fn probed_portfolio(workers: usize) -> (OracleFactory, Arc<AtomicUsize>) {
    let probe = Arc::new(AtomicUsize::new(0));
    let handle = Arc::clone(&probe);
    let factory = OracleFactory::new(move |config: SolverConfig| {
        let mut ctx = PortfolioContext::with_config(workers, config);
        ctx.set_worker_probe(Arc::clone(&handle));
        Box::new(ctx)
    });
    (factory, probe)
}

#[test]
fn cancelling_mid_count_terminates_all_workers_and_keeps_partial_results() {
    // Cancel from inside the progress observer while rounds are in flight
    // (two scheduler threads, each racing 3 workers per check).  After the
    // count returns: no worker thread may still be alive — the races are
    // scoped, joined before every `check` returns — and the partial work
    // must be reported Timeout-style rather than discarded or errored.
    let (factory, probe) = probed_portfolio(3);
    let token = CancellationToken::new();
    let trigger = token.clone();
    let cells = Arc::new(AtomicUsize::new(0));
    let cells_seen = Arc::clone(&cells);
    let mut session = saturating_session_builder(12)
        .iterations(500)
        .threads(2)
        .oracle_factory(factory)
        .cancellation(token)
        .on_progress(move |event| {
            if let ProgressEvent::Cell { .. } = event {
                // Abort a few cells in, while checks are still being issued.
                if cells_seen.fetch_add(1, Ordering::SeqCst) >= 3 {
                    trigger.cancel();
                }
            }
        })
        .build()
        .unwrap();
    let report = session.count().unwrap();

    assert_eq!(
        probe.load(Ordering::SeqCst),
        0,
        "a portfolio worker thread outlived the cancelled count"
    );
    assert!(session.cancellation().is_cancelled());
    // Far fewer than the 500 requested rounds ran; the work done is kept.
    assert!(report.stats.iterations < 500);
    assert!(report.stats.cells_explored >= 1);
    assert!(report.stats.oracle_calls >= 1);
    // A cancelled run is not an error: it reports Timeout (or an estimate
    // from rounds that finished before the token flipped).
    assert!(matches!(
        report.outcome,
        CountOutcome::Timeout | CountOutcome::Approximate { .. }
    ));
}

#[test]
fn pre_cancelled_portfolio_count_stops_before_spawning_workers() {
    let (factory, probe) = probed_portfolio(3);
    let token = CancellationToken::new();
    token.cancel();
    let mut session = saturating_session_builder(10)
        .iterations(50)
        .oracle_factory(factory)
        .cancellation(token)
        .build()
        .unwrap();
    let report = session.count().unwrap();
    assert_eq!(report.outcome, CountOutcome::Timeout);
    assert_eq!(probe.load(Ordering::SeqCst), 0);
}

#[test]
fn loser_conflicts_and_rebuilds_reach_the_count_stats() {
    // A full saturating count on the portfolio backend: the rebuild-style
    // workers lose plenty of races, yet their rebuilds (one per pop that
    // crossed encoded assertions) must show up in the merged CountStats —
    // the accounting contract that keeps before/after measurements honest.
    let mut session = saturating_session_builder(8)
        .iterations(3)
        .backend(BackendSpec::Portfolio { workers: 4 })
        .build()
        .unwrap();
    let report = session.count().unwrap();
    assert!(matches!(report.outcome, CountOutcome::Approximate { .. }));
    assert_eq!(report.stats.portfolio_workers, 4);
    // Slots 1 and 3 of the worker table are rebuild-style: the galloping
    // search popped frames in every round, so rebuilds must be non-zero
    // even though those workers won only some (possibly zero) races.
    assert!(
        report.stats.rebuilds > 0,
        "losers' rebuilds were dropped from the totals"
    );
    // The `cancelled` side of the winner/cancelled accounting obeys its
    // invariant: at most workers−1 losers per check can be cut short.
    // (A strict `> 0` would be timing-dependent — on enough idle cores
    // every loser of an easy race can finish decisively before observing
    // the stop flag — so only the bound is portable.)
    assert!(report.stats.cancelled_solves <= 3 * report.stats.oracle_calls);
    // Every check was credited to exactly one winner.
    let wins: u64 = report.stats.worker_wins.iter().sum();
    assert_eq!(wins, report.stats.oracle_calls);
    // Diversification is live: at least two distinct worker configurations
    // won races over the run.
    let winners = report.stats.worker_wins.iter().filter(|&&w| w > 0).count();
    assert!(winners >= 2, "wins = {:?}", report.stats.worker_wins);
}
