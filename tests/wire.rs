//! Contract tests for the `pact-service` wire protocol: SMT-LIB 2 text in,
//! line-delimited JSON out.
//!
//! These pin the protocol's load-bearing guarantees end to end:
//!
//! * a wire count is **bit-identical** to a direct single-threaded
//!   [`Session::count`] under the request's own configuration — proved for
//!   fixed scripts and property-tested over random thresholds and seeds;
//! * the JSON numbers round-trip: what the wire says is exactly what the
//!   engine computed (estimate, oracle calls, iterations);
//! * malformed input answers a positioned error (line *and* column) and
//!   never kills the connection — subsequent commands still work;
//! * both transports behave identically: `serve_connection` over an
//!   in-memory reader/writer pair (pipe mode) and over a real TCP socket
//!   (`--listen` mode);
//! * requests are multiplexed by id on one connection — a cheap count
//!   submitted after an expensive one answers first — and `(cancel N)`
//!   resolves the expensive one with a `"cancelled"` disposition.

use std::io::{BufRead, BufReader, Cursor, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

use proptest::prelude::*;

use pact::Session;
use pact_ir::{Sort, TermManager};
use pact_service::wire::{serve_connection, serve_listener, WireConnection, WIRE_SCHEMA_VERSION};
use pact_service::{CountRequest, CountingService, ServiceConfig};

fn service(shards: usize) -> CountingService {
    CountingService::new(ServiceConfig {
        shards,
        queue_capacity: 16,
    })
}

/// Pulls one field's raw text out of a flat wire JSON line.
fn field<'l>(line: &'l str, key: &str) -> Option<&'l str> {
    let pattern = format!("\"{key}\": ");
    let start = line.find(&pattern)? + pattern.len();
    let rest = &line[start..];
    let end = rest.find([',', '}'])?;
    Some(rest[..end].trim())
}

fn numeric(line: &str, key: &str) -> f64 {
    field(line, key)
        .unwrap_or_else(|| panic!("line carries {key:?}: {line}"))
        .parse()
        .unwrap_or_else(|_| panic!("{key:?} is numeric in: {line}"))
}

/// The direct ground truth for `x >= threshold` over 8 bits, under the
/// same configuration a wire count with these options uses.
fn direct_reference(threshold: u64, seed: u64, iterations: u32) -> pact::CountReport {
    let mut tm = TermManager::new();
    let x = tm.mk_var("x", Sort::BitVec(8));
    let c = tm.mk_bv_const(u128::from(threshold), 8);
    let f = tm.mk_bv_ule(c, x).unwrap();
    let request = CountRequest::new(tm.clone())
        .assert(f)
        .project(x)
        .seed(seed)
        .iterations(iterations);
    let config = request.counter_config();
    let mut session = Session::builder(tm)
        .assert(f)
        .project(x)
        .config(config)
        .build()
        .unwrap();
    session.count().unwrap()
}

fn count_script(threshold: u64, seed: u64, iterations: u32) -> String {
    format!(
        "(set-logic QF_BV)\n\
         (declare-const x (_ BitVec 8))\n\
         (assert (bvule #x{threshold:02x} x))\n\
         (set-option :seed {seed})\n\
         (set-option :iterations {iterations})\n\
         (count x)\n"
    )
}

/// Asserts one wire result line against the direct reference report.
fn assert_matches_reference(line: &str, reference: &pact::CountReport) {
    let (outcome, estimate) = match reference.outcome {
        pact::CountOutcome::Exact(n) => ("exact", n as f64),
        pact::CountOutcome::Approximate { estimate, .. } => ("approximate", estimate),
        pact::CountOutcome::Unsatisfiable => ("unsat", 0.0),
        pact::CountOutcome::Timeout => ("timeout", -1.0),
    };
    assert_eq!(
        field(line, "outcome"),
        Some(format!("\"{outcome}\"")).as_deref()
    );
    assert_eq!(
        numeric(line, "estimate"),
        estimate,
        "wire vs direct: {line}"
    );
    assert_eq!(
        numeric(line, "oracle_calls") as u64,
        reference.stats.oracle_calls
    );
    assert_eq!(
        numeric(line, "iterations") as u64,
        u64::from(reference.stats.iterations)
    );
    assert_eq!(field(line, "disposition"), Some("\"completed\""));
}

#[test]
fn wire_counts_are_bit_identical_to_direct_sessions() {
    let svc = service(2);
    let mut conn = WireConnection::new(&svc);
    let out = conn.run_script(&count_script(0x10, 42, 3));
    let result = out
        .iter()
        .find(|l| l.contains("\"kind\": \"count\""))
        .expect("count resolved");
    assert!(result.contains(&format!("\"schema_version\": {WIRE_SCHEMA_VERSION}")));
    assert_matches_reference(result, &direct_reference(0x10, 42, 3));
    svc.shutdown();
}

proptest! {
    // Each case runs two real counts (wire + direct); keep the budget small.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn wire_round_trip_matches_direct_for_random_instances(
        threshold in 1u64..=250,
        seed in 0u64..1_000,
    ) {
        let svc = service(1);
        let mut conn = WireConnection::new(&svc);
        let out = conn.run_script(&count_script(threshold, seed, 1));
        let result = out
            .iter()
            .find(|l| l.contains("\"kind\": \"count\""))
            .expect("count resolved");
        let reference = direct_reference(threshold, seed, 1);
        // Round trip: the numbers parsed back out of the JSON are exactly
        // the engine's. An exact outcome must also equal the closed form.
        assert_matches_reference(result, &reference);
        if let pact::CountOutcome::Exact(n) = reference.outcome {
            prop_assert_eq!(n, 256 - threshold);
        }
        svc.shutdown();
    }
}

#[test]
fn malformed_input_answers_positioned_errors_and_the_connection_survives() {
    let svc = service(1);
    let mut conn = WireConnection::new(&svc);
    let mut out = Vec::new();

    // Every entry is one line of garbage; the expected line number is its
    // position in the feed, and every error must carry line and column.
    let cases: &[(&str, &str)] = &[
        ("(frobnicate x)", "unknown command"),
        ("(count nosuchvar)", "unknown variable"),
        ("(set-option :epsilon)", ":key and a value"),
        ("(set-option :epsilon many)", "epsilon"),
        ("(set-option :backend warp)", "backend"),
        ("(cancel 99)", "no pending request"),
        ("(check-projected x)", "no arguments"),
        ("stray-atom", "parenthesised command"),
        ("(count)", "no projection"),
    ];
    for (k, (input, expect)) in cases.iter().enumerate() {
        let before = out.len();
        conn.feed(&format!("{input}\n"), &mut out);
        assert_eq!(out.len(), before + 1, "{input:?} answers exactly one error");
        let error = &out[before];
        assert!(error.contains("\"kind\": \"error\""), "{input:?}: {error}");
        assert!(
            error.contains(&format!("\"line\": {}", k + 1)),
            "{input:?} names line {}: {error}",
            k + 1
        );
        assert!(error.contains("\"column\": "), "{input:?}: {error}");
        assert!(
            error.contains(expect),
            "{input:?} explains itself with {expect:?}: {error}"
        );
    }

    // A declaration error from the inner parser is positioned too.
    let before = out.len();
    conn.feed("(declare-const y (_ BitVec banana))\n", &mut out);
    assert_eq!(out.len(), before + 1);
    assert!(out[before].contains("\"kind\": \"error\""));
    assert!(out[before].contains(&format!("\"line\": {}", cases.len() + 1)));

    // The connection survived all of it: a well-formed count still answers,
    // bit-identical to the direct session.
    let mut tail = conn.run_script(&count_script(0x20, 7, 2));
    let result = tail
        .drain(..)
        .find(|l| l.contains("\"kind\": \"count\""))
        .expect("count resolved after the error barrage");
    assert_matches_reference(&result, &direct_reference(0x20, 7, 2));
    assert!(!conn.exited());
    svc.shutdown();
}

#[test]
fn pipe_transport_answers_bit_identically() {
    // serve_connection over an in-memory reader/writer pair — exactly
    // `pact-serve < script.smt2`.
    let svc = service(2);
    let script = format!("{}(exit)\n", count_script(0x30, 11, 2));
    let mut output = Vec::new();
    serve_connection(&svc, Cursor::new(script.into_bytes()), &mut output).unwrap();
    svc.shutdown();

    let text = String::from_utf8(output).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(
        lines.iter().any(|l| l.contains("\"kind\": \"accepted\"")),
        "acknowledgement first: {text}"
    );
    let result = lines
        .iter()
        .find(|l| l.contains("\"kind\": \"count\""))
        .expect("count resolved before EOF shutdown");
    assert_matches_reference(result, &direct_reference(0x30, 11, 2));
}

#[test]
fn tcp_transport_answers_bit_identically() {
    // The same session over a real socket — exactly `pact-serve --listen`.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        let svc = service(2);
        let _ = serve_listener(&svc, &listener);
    });

    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(format!("{}(exit)\n", count_script(0x40, 5, 2)).as_bytes())
        .unwrap();
    stream.flush().unwrap();

    let mut result = None;
    for line in BufReader::new(stream.try_clone().unwrap()).lines() {
        let line = line.unwrap();
        if line.contains("\"kind\": \"count\"") {
            result = Some(line);
            break;
        }
    }
    drop(stream);
    let result = result.expect("count resolved over TCP");
    assert_matches_reference(&result, &direct_reference(0x40, 5, 2));
}

#[test]
fn requests_multiplex_by_id_and_cancel_resolves_with_disposition() {
    let svc = service(2);
    let mut conn = WireConnection::new(&svc);
    let mut out = Vec::new();

    // Request 0: expensive (thousands of iterations over 12 bits).
    conn.feed(
        "(declare-const x (_ BitVec 12))\n\
         (assert (bvule #x800 x))\n\
         (set-option :seed 1)\n\
         (set-option :iterations 2000)\n\
         (count x)\n",
        &mut out,
    );
    // Request 1: cheap, same formula, one iteration.
    conn.feed("(set-option :iterations 1)\n(count x)\n", &mut out);
    assert_eq!(
        out.iter()
            .filter(|l| l.contains("\"kind\": \"accepted\""))
            .count(),
        2,
        "both counts acknowledged immediately: {out:?}"
    );

    // The cheap count answers while the expensive one is still running:
    // multiplexing by id, out of submission order.
    loop {
        conn.poll(&mut out);
        if out
            .iter()
            .any(|l| l.contains("\"kind\": \"count\"") && l.contains("\"id\": 1"))
        {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(
        !conn.idle(),
        "the expensive request (id 0) is still in flight"
    );
    assert!(!out
        .iter()
        .any(|l| l.contains("\"kind\": \"count\"") && l.contains("\"id\": 0")));

    // Cancel the expensive one; it resolves with the cancelled disposition
    // (partial statistics, not silence).
    conn.feed("(cancel 0)\n", &mut out);
    conn.finish(&mut out);
    let cancelled = out
        .iter()
        .find(|l| l.contains("\"kind\": \"count\"") && l.contains("\"id\": 0"))
        .expect("cancelled request still reports");
    // The disposition distinguishes cancellation from completion even when
    // the interrupted engine still had partial rounds to report (the
    // outcome may be "timeout" or a partial "approximate" median).
    assert_eq!(field(cancelled, "disposition"), Some("\"cancelled\""));
    assert!(field(cancelled, "outcome").is_some());
    svc.shutdown();
}

#[test]
fn accepted_acks_carry_the_placement_cost_estimate() {
    let svc = service(1);
    let mut conn = WireConnection::new(&svc);
    let out = conn.run_script(&count_script(0x10, 3, 1));
    let ack = out
        .iter()
        .find(|l| l.contains("\"kind\": \"accepted\""))
        .expect("count acknowledged");
    let ack_cost = numeric(ack, "cost_estimate") as u64;
    assert!(ack_cost >= 1);
    // The result line repeats the same cost the placement used.
    let result = out
        .iter()
        .find(|l| l.contains("\"kind\": \"count\""))
        .unwrap();
    assert_eq!(numeric(result, "cost_estimate") as u64, ack_cost);
    svc.shutdown();
}
