//! Integration tests of the SMT-LIB front end: generated instances must
//! export to SMT-LIB, parse back, and count to the same value.

use pact::{enumerate_count, CountOutcome, CounterConfig};
use pact_benchgen::{generate_for_logic, GenParams};
use pact_ir::logic::Logic;
use pact_ir::{parser, TermManager};

#[test]
fn every_logic_round_trips_through_smtlib() {
    let params = GenParams {
        scale: 1,
        width: 5,
        seed: 101,
    };
    for logic in Logic::TABLE_ONE {
        let instance = generate_for_logic(logic, &params);
        let text = instance.to_smtlib();

        // Count the original instance.
        let mut tm = instance.tm.clone();
        let original = enumerate_count(
            &mut tm,
            &instance.asserts,
            &instance.projection,
            5_000,
            &CounterConfig::fast(),
        )
        .unwrap();

        // Re-parse and count the exported script.
        let mut tm2 = TermManager::new();
        let script = parser::parse_script(&mut tm2, &text)
            .unwrap_or_else(|e| panic!("{logic}: exported script failed to parse: {e}"));
        assert_eq!(
            script.logic, logic,
            "logic annotation survives the roundtrip"
        );
        assert_eq!(
            script.projection.len(),
            instance.projection.len(),
            "projection annotation survives the roundtrip"
        );
        let reparsed = enumerate_count(
            &mut tm2,
            &script.asserts,
            &script.projection,
            5_000,
            &CounterConfig::fast(),
        )
        .unwrap();
        assert_eq!(
            original.outcome, reparsed.outcome,
            "{logic}: projected count changed across the SMT-LIB roundtrip"
        );
    }
}

#[test]
fn parser_rejects_malformed_scripts() {
    for bad in [
        "(assert (bvult x (_ bv1 4)))",   // undeclared symbol
        "(declare-fun x () (_ BitVec 4)", // unbalanced parens
        "(set-info :projection (y))",     // undeclared projection variable
        "(declare-fun x () (_ BitVec 4)) (assert (frobnicate x))", // unknown operator
    ] {
        let mut tm = TermManager::new();
        assert!(
            parser::parse_script(&mut tm, bad).is_err(),
            "expected a parse error for {bad:?}"
        );
    }
}

#[test]
fn counts_are_stable_across_reexport() {
    // Export, parse, re-export: the second export must equal the first
    // (printing is deterministic and parsing is faithful).
    let instance = generate_for_logic(
        Logic::QfAbv,
        &GenParams {
            scale: 2,
            width: 6,
            seed: 55,
        },
    );
    let first = instance.to_smtlib();
    let mut tm = TermManager::new();
    let script = parser::parse_script(&mut tm, &first).unwrap();
    let second =
        pact_ir::printer::script_to_smtlib(&tm, script.logic, &script.asserts, &script.projection);
    let mut tm2 = TermManager::new();
    let script2 = parser::parse_script(&mut tm2, &second).unwrap();
    assert_eq!(script.asserts.len(), script2.asserts.len());
    let c1 = enumerate_count(
        &mut tm,
        &script.asserts,
        &script.projection,
        5_000,
        &CounterConfig::fast(),
    )
    .unwrap();
    let c2 = enumerate_count(
        &mut tm2,
        &script2.asserts,
        &script2.projection,
        5_000,
        &CounterConfig::fast(),
    )
    .unwrap();
    assert_eq!(c1.outcome, c2.outcome);
    assert!(matches!(c1.outcome, CountOutcome::Exact(_)));
}
