//! Session-level integration tests: the pluggable-oracle contract.
//!
//! The counting core must have no compiled-in dependency on the concrete
//! `Context` constructor: everything it needs goes through the `Oracle`
//! trait and the `OracleFactory` hook.  These tests prove it by running a
//! `Session` against an *instrumented* oracle (a wrapper that counts every
//! trait call before delegating to `Context`) and checking that
//!
//! 1. the engine really routed its work through the custom backend,
//! 2. the report is identical to the built-in backend's (the wrapper is
//!    semantics-preserving, so any divergence is an engine bug), and
//! 3. under `ParallelConfig { threads: 2 }` the report stays bit-identical
//!    to the single-threaded one even though per-round oracles are built on
//!    worker threads through the same factory.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pact::{
    BackendSpec, CountError, CountOutcome, CountReport, CounterConfig, OracleFactory,
    ProgressEvent, Session,
};
use pact_ir::{BvValue, Sort, TermId, TermManager, Value};
use pact_solver::{Context, Oracle, OracleStats, SolverConfig, SolverResult};

/// Cross-thread tally of every trait method the engine invoked, shared by
/// all oracles a factory builds.
#[derive(Default)]
struct OpCounts {
    built: AtomicU64,
    pushes: AtomicU64,
    pops: AtomicU64,
    term_asserts: AtomicU64,
    xor_asserts: AtomicU64,
    tracked: AtomicU64,
    checks: AtomicU64,
    models: AtomicU64,
}

/// A semantics-preserving oracle: counts calls, then delegates to the
/// reference [`Context`].
struct Instrumented {
    inner: Context,
    ops: Arc<OpCounts>,
}

impl Oracle for Instrumented {
    fn push(&mut self) {
        self.ops.pushes.fetch_add(1, Ordering::Relaxed);
        self.inner.push();
    }

    fn pop(&mut self) {
        self.ops.pops.fetch_add(1, Ordering::Relaxed);
        self.inner.pop();
    }

    fn assert_term(&mut self, t: TermId) {
        self.ops.term_asserts.fetch_add(1, Ordering::Relaxed);
        self.inner.assert_term(t);
    }

    fn assert_xor_bits(&mut self, bits: Vec<(TermId, u32)>, rhs: bool) {
        self.ops.xor_asserts.fetch_add(1, Ordering::Relaxed);
        self.inner.assert_xor_bits(bits, rhs);
    }

    fn track_var(&mut self, var: TermId) {
        self.ops.tracked.fetch_add(1, Ordering::Relaxed);
        self.inner.track_var(var);
    }

    fn check(&mut self, tm: &mut TermManager) -> pact_solver::Result<SolverResult> {
        self.ops.checks.fetch_add(1, Ordering::Relaxed);
        self.inner.check(tm)
    }

    fn model_value(&self, tm: &TermManager, var: TermId) -> Option<Value> {
        self.inner.model_value(tm, var)
    }

    fn projected_model(&self, tm: &TermManager, projection: &[TermId]) -> Option<Vec<BvValue>> {
        self.ops.models.fetch_add(1, Ordering::Relaxed);
        self.inner.projected_model(tm, projection)
    }

    fn stats(&self) -> OracleStats {
        self.inner.stats()
    }
}

fn instrumented_factory() -> (OracleFactory, Arc<OpCounts>) {
    let ops = Arc::new(OpCounts::default());
    let handle = Arc::clone(&ops);
    let factory = OracleFactory::new(move |config: SolverConfig| {
        handle.built.fetch_add(1, Ordering::Relaxed);
        Box::new(Instrumented {
            inner: Context::with_config(config),
            ops: Arc::clone(&handle),
        })
    });
    (factory, ops)
}

/// x ≥ 16 over 8 bits: 240 projected models, which saturates the threshold
/// so the hashing rounds (and their per-round oracles) run.
fn saturating_session(config: CounterConfig) -> Session {
    let mut tm = TermManager::new();
    let x = tm.mk_var("x", Sort::BitVec(8));
    let c = tm.mk_bv_const(16, 8);
    let f = tm.mk_bv_ule(c, x).unwrap();
    Session::builder(tm)
        .assert(f)
        .project(x)
        .config(config)
        .build()
        .unwrap()
}

fn base_config() -> CounterConfig {
    CounterConfig {
        iterations_override: Some(5),
        seed: 42,
        ..CounterConfig::default()
    }
}

/// The deterministic slice of a report (everything but wall-clock time).
fn deterministic_parts(report: &CountReport) -> (CountOutcome, u64, u64, u32, u32) {
    (
        report.outcome.clone(),
        report.stats.oracle_calls,
        report.stats.cells_explored,
        report.stats.iterations,
        report.stats.final_hash_count,
    )
}

#[test]
fn unbalanced_pop_panics_identically_across_backends() {
    // The `Oracle` contract: `pop` without a matching `push` is a caller
    // bug and panics — identically for the reference backend, the
    // incremental backend, the two parallel backends, the adaptive policy
    // wrapper, and wrappers that delegate (this file's mock).  Without the
    // documented contract the behaviour silently diverged between
    // implementations.
    let (mock_factory, _ops) = instrumented_factory();
    let factories: Vec<(&str, OracleFactory)> = vec![
        ("context", OracleFactory::from_spec(BackendSpec::Rebuild)),
        (
            "incremental",
            OracleFactory::from_spec(BackendSpec::Incremental),
        ),
        (
            "portfolio",
            OracleFactory::from_spec(BackendSpec::Portfolio { workers: 2 }),
        ),
        (
            "cube",
            OracleFactory::from_spec(BackendSpec::Cube {
                depth: 2,
                workers: 2,
            }),
        ),
        ("adaptive", OracleFactory::from_spec(BackendSpec::Adaptive)),
        ("mock", mock_factory),
    ];
    for (name, factory) in factories {
        // Bare pop on a fresh oracle panics.
        let f = factory.clone();
        let bare = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let mut oracle = f.build(SolverConfig::default());
            oracle.pop();
        }));
        assert!(bare.is_err(), "{name}: bare pop must panic");

        // A balanced push/pop is fine; the *second* pop panics.
        let f = factory.clone();
        let unbalanced = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let mut oracle = f.build(SolverConfig::default());
            oracle.push();
            oracle.pop();
            oracle.pop();
        }));
        assert!(unbalanced.is_err(), "{name}: unbalanced pop must panic");

        // And the panic message names the missing push, per the contract.
        let f = factory;
        let message = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let mut oracle = f.build(SolverConfig::default());
            oracle.pop();
        }))
        .unwrap_err();
        let text = message
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| message.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(
            text.contains("pop without matching push"),
            "{name}: panic message {text:?} must name the missing push"
        );
    }
}

#[test]
fn oracle_accounting_contract_is_uniform_across_backends() {
    // The PR 3 accounting contract, parity-tested across all six oracle
    // impls (reference, incremental, portfolio, cube, adaptive, delegating
    // mock): `checks` counts queries 1:1, `conflicts` is a lifetime total
    // that survives `pop` — including work spent by solvers a rebuild
    // discarded, a portfolio race cancelled, or a cube conquest abandoned
    // — and never decreases.
    let (mock_factory, _ops) = instrumented_factory();
    let factories: Vec<(&str, OracleFactory)> = vec![
        ("context", OracleFactory::from_spec(BackendSpec::Rebuild)),
        (
            "incremental",
            OracleFactory::from_spec(BackendSpec::Incremental),
        ),
        (
            "portfolio",
            OracleFactory::from_spec(BackendSpec::Portfolio { workers: 3 }),
        ),
        (
            "cube",
            OracleFactory::from_spec(BackendSpec::Cube {
                depth: 2,
                workers: 2,
            }),
        ),
        ("adaptive", OracleFactory::from_spec(BackendSpec::Adaptive)),
        ("mock", mock_factory),
    ];
    for (name, factory) in factories {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(10));
        let y = tm.mk_var("y", Sort::BitVec(10));
        let prod = tm.mk_bv_mul(x, y).unwrap();
        let c = tm.mk_bv_const(851, 10);
        let f = tm.mk_eq(prod, c); // conflict-heavy but satisfiable
        let mut oracle = factory.build(SolverConfig::default());
        oracle.assert_term(f);
        assert_eq!(oracle.check(&mut tm).unwrap(), SolverResult::Sat, "{name}");
        let after_first = oracle.stats();
        assert_eq!(after_first.checks, 1, "{name}");

        oracle.push();
        let zero = tm.mk_bv_const(0, 10);
        let g = tm.mk_bv_ult(x, zero).unwrap(); // impossible
        oracle.assert_term(g);
        assert_eq!(
            oracle.check(&mut tm).unwrap(),
            SolverResult::Unsat,
            "{name}"
        );
        let mid = oracle.stats();
        assert_eq!(mid.checks, 2, "{name}");
        assert!(mid.conflicts >= after_first.conflicts, "{name}");

        oracle.pop(); // rebuild backends discard a solver here
        assert_eq!(oracle.check(&mut tm).unwrap(), SolverResult::Sat, "{name}");
        let last = oracle.stats();
        assert_eq!(last.checks, 3, "{name}");
        assert!(
            last.conflicts >= mid.conflicts,
            "{name}: pop lost banked conflicts ({} -> {})",
            mid.conflicts,
            last.conflicts
        );
        // Portfolio accounting: every check credited to exactly one worker,
        // and every other backend reports no portfolio block at all.
        match oracle.portfolio() {
            Some(p) => {
                assert_eq!(p.wins.iter().sum::<u64>(), last.checks, "{name}");
                assert!(p.workers >= 2, "{name}");
            }
            None => assert_ne!(name, "portfolio"),
        }
        // Cube accounting: splits never exceed checks, lookahead
        // refutations are a subset of solved cubes, and every other
        // backend reports no cube block at all.
        match oracle.cube() {
            Some(c) => {
                assert_eq!(name, "cube");
                assert!(c.splits <= last.checks, "{name}");
                assert!(c.cubes_solved >= c.refuted_by_lookahead, "{name}");
            }
            None => assert_ne!(name, "cube"),
        }
        // Policy accounting: every check is attributed to exactly one
        // backend slot (the counts sum back to `checks`), and every
        // non-adaptive backend reports no policy block at all.
        match oracle.policy() {
            Some(p) => {
                assert_eq!(name, "adaptive");
                assert_eq!(p.backend_checks.iter().sum::<u64>(), last.checks, "{name}");
            }
            None => assert_ne!(name, "adaptive"),
        }
    }
}

#[test]
fn custom_oracle_backend_carries_the_whole_count() {
    let (factory, ops) = instrumented_factory();
    let mut session = saturating_session(base_config().with_oracle_factory(factory));
    let report = session.count().unwrap();
    assert!(matches!(report.outcome, CountOutcome::Approximate { .. }));

    // The engine built one base oracle plus one per scheduled round, and
    // every query went through the trait.
    assert!(ops.built.load(Ordering::Relaxed) >= 2);
    assert_eq!(
        ops.checks.load(Ordering::Relaxed),
        report.stats.oracle_calls
    );
    assert!(ops.pushes.load(Ordering::Relaxed) >= report.stats.cells_explored);
    assert_eq!(
        ops.pushes.load(Ordering::Relaxed),
        ops.pops.load(Ordering::Relaxed),
        "push/pop discipline must balance"
    );
    assert!(ops.tracked.load(Ordering::Relaxed) > 0);
    // The default family is H_xor, so hash constraints took the native path.
    assert!(ops.xor_asserts.load(Ordering::Relaxed) > 0);
}

#[test]
fn instrumented_backend_matches_the_builtin_backend_bit_for_bit() {
    let mut builtin = saturating_session(base_config());
    let expected = builtin.count().unwrap();

    let (factory, _ops) = instrumented_factory();
    let mut custom = saturating_session(base_config().with_oracle_factory(factory));
    let observed = custom.count().unwrap();

    assert_eq!(
        deterministic_parts(&observed),
        deterministic_parts(&expected)
    );
}

#[test]
fn custom_oracle_reports_are_bit_identical_with_two_threads() {
    let (factory, ops) = instrumented_factory();
    let serial_config = base_config().with_oracle_factory(factory.clone());
    let mut serial = saturating_session(serial_config);
    let baseline = serial.count().unwrap();
    let serial_checks = ops.checks.load(Ordering::Relaxed);
    assert!(serial_checks > 0);

    let parallel_config = base_config().with_oracle_factory(factory).with_threads(2);
    let mut parallel = saturating_session(parallel_config);
    let report = parallel.count().unwrap();

    // Same factory, two worker threads: the deterministic report slice is
    // unchanged, and the parallel run routed its queries through the same
    // shared instrumentation (so per-thread oracles really came from the
    // factory).
    assert_eq!(deterministic_parts(&report), deterministic_parts(&baseline));
    assert!(ops.checks.load(Ordering::Relaxed) >= 2 * serial_checks);
}

#[test]
fn cdm_and_enumerate_also_run_on_the_custom_backend() {
    let (factory, ops) = instrumented_factory();
    let mut session = saturating_session(base_config().with_oracle_factory(factory));

    let exact = session.enumerate(10_000).unwrap();
    assert_eq!(exact.outcome, CountOutcome::Exact(240));
    let after_enum = ops.checks.load(Ordering::Relaxed);
    assert!(after_enum > 0);

    let cdm = session.count_cdm().unwrap();
    assert!(cdm.outcome.value().is_some());
    assert!(ops.checks.load(Ordering::Relaxed) > after_enum);
    // CDM encodes its XOR constraints as terms, not native XOR rows.
    assert!(ops.term_asserts.load(Ordering::Relaxed) > 0);
}

#[test]
fn structured_errors_surface_through_the_session_api() {
    let mut tm = TermManager::new();
    let x = tm.mk_var("x", Sort::BitVec(4));
    let err = Session::builder(tm)
        .project(x)
        .delta(0.0)
        .build()
        .unwrap_err();
    match err {
        CountError::Config(pact::ConfigError::DeltaOutOfRange { delta }) => {
            assert_eq!(delta, 0.0);
        }
        other => panic!("expected a typed config error, got {other:?}"),
    }

    let tm = TermManager::new();
    assert_eq!(
        Session::builder(tm).build().unwrap_err(),
        CountError::EmptyProjection
    );
}

#[test]
fn progress_events_flow_from_parallel_rounds() {
    let events = Arc::new(AtomicU64::new(0));
    let sink = Arc::clone(&events);
    let mut tm = TermManager::new();
    let x = tm.mk_var("x", Sort::BitVec(8));
    let c = tm.mk_bv_const(16, 8);
    let f = tm.mk_bv_ule(c, x).unwrap();
    let mut session = Session::builder(tm)
        .assert(f)
        .project(x)
        .seed(42)
        .iterations(5)
        .threads(2)
        .on_progress(move |event| {
            if matches!(event, ProgressEvent::Round { .. }) {
                sink.fetch_add(1, Ordering::Relaxed);
            }
        })
        .build()
        .unwrap();
    let report = session.count().unwrap();
    assert!(matches!(report.outcome, CountOutcome::Approximate { .. }));
    // Every scheduled round reported in (speculative rounds may add more;
    // never fewer than the merged iteration count).
    assert!(events.load(Ordering::Relaxed) >= u64::from(report.stats.iterations));
}
