//! Differential and ground-truth testing: every oracle backend pinned to
//! every other, and all of them pinned to brute force.
//!
//! Three layers, from cheapest to strongest:
//!
//! 1. **Differential** — proptest-generated instances per Table I logic
//!    (via `benchgen`) counted under the rebuild, incremental, portfolio,
//!    cube and adaptive backends × seeds × `ParallelConfig { threads: 1, 2 }`,
//!    asserting the deterministic report slice is bit-identical
//!    everywhere.  The slice is the established parity contract of
//!    `tests/backends.rs`: outcome (including the floating-point
//!    estimate), `oracle_calls`, `cells_explored`, `iterations` and
//!    `final_hash_count`; wall-clock fields and the sanctioned per-backend
//!    work profile (`rebuilds`, portfolio win counts, conquered-cube
//!    tallies) are excluded.
//! 2. **Ground truth** — brute-force model enumeration over tiny projected
//!    domains (≤ 6 bits, plus one 7-bit saturating instance), asserting
//!    every backend's exact count *equals* the brute-forced count, every
//!    backend's approximate estimate lies inside the `(ε, δ)` bounds, and
//!    enumeration returns *exactly* the brute-forced model set.
//! 3. Both layers ride the same five-backend sweep (the adaptive policy
//!    oracle joined it when it landed), so adding another backend to
//!    [`factories`] extends the whole harness for free.

use pact::{BackendSpec, CountOutcome, CountReport, Oracle, OracleFactory, Session};
use pact_benchgen::{generate_for_logic, GenParams, Instance};
use pact_ir::logic::Logic;
use pact_ir::{Sort, TermId, TermManager};
use pact_solver::{SolverConfig, SolverResult};
use proptest::prelude::*;

/// The backends under differential test, labelled for failure messages.
fn factories() -> Vec<(&'static str, OracleFactory)> {
    vec![
        ("rebuild", OracleFactory::from_spec(BackendSpec::Rebuild)),
        (
            "incremental",
            OracleFactory::from_spec(BackendSpec::Incremental),
        ),
        (
            "portfolio",
            OracleFactory::from_spec(BackendSpec::Portfolio { workers: 3 }),
        ),
        (
            "cube",
            OracleFactory::from_spec(BackendSpec::Cube {
                depth: 3,
                workers: 2,
            }),
        ),
        ("adaptive", OracleFactory::from_spec(BackendSpec::Adaptive)),
    ]
}

/// The deterministic slice of a report: everything except wall-clock times
/// and the backend-specific work profile (rebuilds, worker wins).
fn deterministic_parts(report: &CountReport) -> (CountOutcome, u64, u64, u32, u32) {
    (
        report.outcome.clone(),
        report.stats.oracle_calls,
        report.stats.cells_explored,
        report.stats.iterations,
        report.stats.final_hash_count,
    )
}

fn count_report(
    instance: &Instance,
    factory: OracleFactory,
    seed: u64,
    threads: usize,
) -> CountReport {
    let mut session = Session::builder(instance.tm.clone())
        .assert_all(&instance.asserts)
        .project_all(&instance.projection)
        .seed(seed)
        .iterations(2)
        .threads(threads)
        .oracle_factory(factory)
        .build()
        .expect("generated instances declare a projection");
    session.count().expect("generated instances are supported")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The headline differential property: for random small instances of a
    /// random Table I logic, all backends × thread counts produce the same
    /// deterministic report slice for the same count seed.
    #[test]
    fn reports_are_bit_identical_across_backends_and_threads(
        case in (0usize..6, 4u32..=5, 0u64..1_000, 0u64..64),
    ) {
        let (logic_idx, width, instance_seed, count_seed) = case;
        let logic = Logic::TABLE_ONE[logic_idx];
        let params = GenParams { scale: 1, width, seed: instance_seed };
        let instance = generate_for_logic(logic, &params);
        let reference = count_report(&instance, OracleFactory::default(), count_seed, 1);
        for (name, factory) in factories() {
            for threads in [1usize, 2] {
                let report = count_report(&instance, factory.clone(), count_seed, threads);
                prop_assert_eq!(
                    deterministic_parts(&report),
                    deterministic_parts(&reference),
                    "{} (logic {}, width {}, instance seed {}, count seed {}, threads {})",
                    name, logic.name(), width, instance_seed, count_seed, threads
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Ground truth: brute force over tiny projected domains.
// ---------------------------------------------------------------------------

/// A hand-built tiny instance with its human-verified description.
struct TinyInstance {
    name: &'static str,
    tm: TermManager,
    asserts: Vec<TermId>,
    projection: Vec<TermId>,
}

/// The ≤ 7-projected-bit instances the ground-truth layer sweeps.
fn tiny_instances() -> Vec<TinyInstance> {
    let mut out = Vec::new();

    // 25 models: x ≥ 7 over 5 bits.
    let mut tm = TermManager::new();
    let x = tm.mk_var("x", Sort::BitVec(5));
    let seven = tm.mk_bv_const(7, 5);
    let f = tm.mk_bv_ule(seven, x).unwrap();
    out.push(TinyInstance {
        name: "bv-interval",
        tm,
        asserts: vec![f],
        projection: vec![x],
    });

    // 28 models: x < y over two 3-bit variables (6-bit projection).
    let mut tm = TermManager::new();
    let x = tm.mk_var("x", Sort::BitVec(3));
    let y = tm.mk_var("y", Sort::BitVec(3));
    let f = tm.mk_bv_ult(x, y).unwrap();
    out.push(TinyInstance {
        name: "bv-pair",
        tm,
        asserts: vec![f],
        projection: vec![x, y],
    });

    // 13 models: hybrid — b ≥ 3 over 4 bits with a live real constraint
    // (the continuous part is always extensible, so it never restricts the
    // projected count).
    let mut tm = TermManager::new();
    let b = tm.mk_var("b", Sort::BitVec(4));
    let r = tm.mk_var("r", Sort::Real);
    let three = tm.mk_bv_const(3, 4);
    let f1 = tm.mk_bv_ule(three, b).unwrap();
    let zero = tm.mk_real_const(pact_ir::Rational::ZERO);
    let one = tm.mk_real_const(pact_ir::Rational::ONE);
    let f2 = tm.mk_real_lt(zero, r).unwrap();
    let f3 = tm.mk_real_lt(r, one).unwrap();
    out.push(TinyInstance {
        name: "hybrid",
        tm,
        asserts: vec![f1, f2, f3],
        projection: vec![b],
    });

    // 112 models: x ≥ 16 over 7 bits — above the ε = 0.8 threshold (73),
    // so every backend takes the hashing path and the (ε, δ) bound is
    // exercised for real.
    let mut tm = TermManager::new();
    let x = tm.mk_var("x", Sort::BitVec(7));
    let c = tm.mk_bv_const(16, 7);
    let f = tm.mk_bv_ule(c, x).unwrap();
    out.push(TinyInstance {
        name: "bv-saturating",
        tm,
        asserts: vec![f],
        projection: vec![x],
    });

    out
}

/// Ground truth by definition: enumerate *every* assignment of the
/// projection variables and ask a plain oracle whether it extends to a full
/// model.  No blocking clauses, no hashing, no galloping — a completely
/// independent code path from the counting engine.
fn brute_force_models(instance: &TinyInstance) -> Vec<Vec<u128>> {
    let mut tm = instance.tm.clone();
    let widths: Vec<u32> = instance
        .projection
        .iter()
        .map(|&v| match tm.sort(v) {
            Sort::BitVec(w) => w,
            Sort::Bool => 1,
            other => panic!("unsupported projection sort {other}"),
        })
        .collect();
    let total_bits: u32 = widths.iter().sum();
    assert!(total_bits <= 7, "brute force caps at 7 projected bits");

    let mut ctx = pact_solver::Context::new();
    for &v in &instance.projection {
        ctx.track_var(v);
    }
    for &f in &instance.asserts {
        ctx.assert_term(f);
    }

    let mut models = Vec::new();
    for assignment in 0u128..(1 << total_bits) {
        // Slice the assignment's bits into per-variable values.
        let mut shift = 0;
        let values: Vec<u128> = widths
            .iter()
            .map(|&w| {
                let value = (assignment >> shift) & ((1 << w) - 1);
                shift += w;
                value
            })
            .collect();
        ctx.push();
        for ((&var, &value), &width) in instance.projection.iter().zip(&values).zip(&widths) {
            let constant = tm.mk_bv_const(value, width);
            let eq = tm.mk_eq(var, constant);
            ctx.assert_term(eq);
        }
        let verdict = ctx.check(&mut tm).expect("tiny instances are supported");
        ctx.pop();
        if verdict == SolverResult::Sat {
            models.push(values);
        }
    }
    models
}

#[test]
fn exact_counts_match_brute_force_on_every_backend() {
    for instance in tiny_instances() {
        let truth = brute_force_models(&instance);
        let epsilon = 0.8;
        for (name, factory) in factories() {
            let mut session = Session::builder(instance.tm.clone())
                .assert_all(&instance.asserts)
                .project_all(&instance.projection)
                .seed(11)
                .iterations(9)
                .epsilon(epsilon)
                .oracle_factory(factory)
                .build()
                .unwrap();
            let report = session.count().unwrap();
            match report.outcome {
                CountOutcome::Exact(n) => {
                    assert_eq!(
                        n as usize,
                        truth.len(),
                        "{}/{name}: exact count diverges from brute force",
                        instance.name
                    );
                }
                CountOutcome::Approximate { estimate, .. } => {
                    // The (ε, δ) contract: the exact count lies inside the
                    // (1 + ε) band around the estimate (deterministic here
                    // because the seed is fixed).
                    let truth = truth.len() as f64;
                    assert!(
                        truth <= estimate * (1.0 + epsilon) && estimate / (1.0 + epsilon) <= truth,
                        "{}/{name}: estimate {estimate} outside (1+ε) of {truth}",
                        instance.name
                    );
                }
                CountOutcome::Unsatisfiable => {
                    assert!(
                        truth.is_empty(),
                        "{}/{name}: reported unsat but brute force found models",
                        instance.name
                    );
                }
                CountOutcome::Timeout => {
                    panic!("{}/{name}: unexpected timeout", instance.name)
                }
            }
        }
    }
}

#[test]
fn aggressive_compaction_preserves_bit_identical_reports() {
    // Frame-garbage compaction may change the SAT search trajectory (learnt
    // clauses die with the old solver) but never the counting trajectory:
    // cell sizes are exact bounded enumerations, so the deterministic
    // report slice must match the non-compacting incremental backend
    // bit for bit.  Threshold 1 compacts as aggressively as possible.
    // The tiny instances finish each round in one or two cells, so frame
    // garbage accumulates only as an oracle is about to be dropped.  A
    // wider instance (496 models over 9 bits, ~6.8× the ε = 0.8 saturation
    // threshold) forces the galloping search through several saturated
    // cells per round — each pop retires a cell's worth of blocking
    // clauses while the oracle still has checks ahead of it, which is
    // exactly the workload compaction exists for.
    let mut churn_tm = TermManager::new();
    let x = churn_tm.mk_var("x", Sort::BitVec(9));
    let c = churn_tm.mk_bv_const(16, 9);
    let f = churn_tm.mk_bv_ule(c, x).unwrap();
    let churn = TinyInstance {
        name: "bv-churn",
        tm: churn_tm,
        asserts: vec![f],
        projection: vec![x],
    };

    let mut total_compactions = 0;
    for instance in tiny_instances().into_iter().chain([churn]) {
        let compacting = OracleFactory::new(|config| {
            let mut ctx = pact_solver::IncrementalContext::with_config(config);
            ctx.set_compaction_threshold(1);
            Box::new(ctx)
        });
        let run = |factory: OracleFactory| {
            let mut session = Session::builder(instance.tm.clone())
                .assert_all(&instance.asserts)
                .project_all(&instance.projection)
                .seed(11)
                .iterations(9)
                .epsilon(0.8)
                .oracle_factory(factory)
                .build()
                .unwrap();
            session.count().unwrap()
        };
        let reference = run(OracleFactory::from_spec(BackendSpec::Incremental));
        let compacted = run(compacting);
        assert_eq!(
            deterministic_parts(&compacted),
            deterministic_parts(&reference),
            "{}: compaction changed the deterministic report slice",
            instance.name
        );
        assert_eq!(
            compacted.stats.rebuilds, 0,
            "{}: a compaction was miscounted as a rebuild",
            instance.name
        );
        total_compactions += compacted.stats.compactions;
    }
    // The threshold-1 runs must actually have exercised the machinery
    // somewhere in the sweep, or the equality above proves nothing.
    assert!(
        total_compactions > 0,
        "no instance ever triggered a compaction"
    );
}

#[test]
fn interning_stress_is_bit_identical_and_serves_preprocessing_from_cache() {
    // Satellite of the hash-consing refactor: an instance whose asserts
    // share a deep sub-DAG (a folded spine re-referenced by every layer).
    // Interning must collapse the rebuild of the spine to zero fresh
    // allocations, every backend must produce the bit-identical
    // deterministic report slice, and every backend must serve at least one
    // preprocessing result from its term-id-keyed cache: the galloping
    // search re-asserts structurally identical terms across checks, which
    // hash consing resolves to previously-seen ids.
    let build_spine = |tm: &mut TermManager, x: TermId, y: TermId| -> Vec<TermId> {
        let mut spine = tm.mk_bv_xor(x, y).unwrap();
        for i in 0..8u128 {
            let c = tm.mk_bv_const(3 * i + 1, 6);
            let mixed = tm.mk_bv_add(spine, c).unwrap();
            let rotated = tm.mk_bv_xor(mixed, x).unwrap();
            spine = tm.mk_bv_and(rotated, mixed).unwrap();
        }
        let cap = tm.mk_bv_const(61, 6);
        let lo = tm.mk_bv_const(2, 6);
        vec![
            tm.mk_bv_ule(spine, cap).unwrap(),
            tm.mk_bv_ule(lo, x).unwrap(),
        ]
    };
    let mut tm = TermManager::new();
    let x = tm.mk_var("x", Sort::BitVec(6));
    let y = tm.mk_var("y", Sort::BitVec(6));
    let asserts = build_spine(&mut tm, x, y);
    // Hash consing: rebuilding the same spine allocates nothing new and
    // resolves to the same roots.
    let interned = tm.len();
    let rebuilt = build_spine(&mut tm, x, y);
    assert_eq!(rebuilt, asserts, "identical construction, identical ids");
    assert_eq!(tm.len(), interned, "a rebuild must not grow the store");

    let run = |factory: OracleFactory| {
        let mut session = Session::builder(tm.clone())
            .assert_all(&asserts)
            .project_all(&[x, y])
            .seed(7)
            .iterations(3)
            .epsilon(0.8)
            .oracle_factory(factory)
            .build()
            .unwrap();
        session.count().unwrap()
    };
    let reference = run(OracleFactory::default());
    for (name, factory) in factories() {
        let report = run(factory);
        assert_eq!(
            deterministic_parts(&report),
            deterministic_parts(&reference),
            "{name}: interning-stress report diverged"
        );
        assert!(
            report.stats.preprocess_cache_hits > 0,
            "{name}: expected preprocessing cache hits, got 0"
        );
        // terms_interned stamps the final store size: at least the formula
        // itself, plus whatever preprocessing interned on the main manager
        // (which varies by backend — the cube front-end, say, interns its
        // lookahead decompositions — so only the floor is portable).
        assert!(
            report.stats.terms_interned >= interned as u64,
            "{name}: terms_interned {} below the {} formula terms",
            report.stats.terms_interned,
            interned
        );
    }
}

#[test]
fn enumeration_returns_exactly_the_brute_forced_model_set() {
    for instance in tiny_instances() {
        let mut truth = brute_force_models(&instance);
        truth.sort();
        for (name, factory) in factories() {
            // Drive the oracle directly with the saturating counter's
            // block-and-repeat pattern, collecting the projected models.
            let mut tm = instance.tm.clone();
            let mut oracle = factory.build(SolverConfig::default());
            for &v in &instance.projection {
                oracle.track_var(v);
            }
            for &f in &instance.asserts {
                oracle.assert_term(f);
            }
            let mut found: Vec<Vec<u128>> = Vec::new();
            loop {
                match oracle.check(&mut tm).unwrap() {
                    SolverResult::Sat => {
                        let model = oracle
                            .projected_model(&tm, &instance.projection)
                            .expect("model after SAT");
                        let values: Vec<u128> = model.iter().map(|v| v.as_u128()).collect();
                        assert!(
                            !found.contains(&values),
                            "{}/{name}: model repeated",
                            instance.name
                        );
                        pact::saturating::block_projected_model(
                            &mut *oracle,
                            &mut tm,
                            &instance.projection,
                            &model,
                        );
                        found.push(values);
                    }
                    SolverResult::Unsat => break,
                    SolverResult::Unknown => panic!("{}/{name}: unknown", instance.name),
                }
            }
            found.sort();
            assert_eq!(
                found, truth,
                "{}/{name}: enumerated model set diverges from brute force",
                instance.name
            );
            // The session-level enumerator agrees on the count.
            let mut session = Session::builder(instance.tm.clone())
                .assert_all(&instance.asserts)
                .project_all(&instance.projection)
                .oracle_factory(factory)
                .build()
                .unwrap();
            let report = session.enumerate(10_000).unwrap();
            let expected = if truth.is_empty() {
                CountOutcome::Unsatisfiable
            } else {
                CountOutcome::Exact(truth.len() as u64)
            };
            assert_eq!(report.outcome, expected, "{}/{name}", instance.name);
        }
    }
}
