//! Thread-count determinism of the counting engine.
//!
//! The round scheduler's contract: for a fixed seed, `pact_count` (and the
//! CDM baseline) report the *same* outcome and the same deterministic
//! statistics for every thread count — parallelism may only change
//! wall-clock time.  These tests pin that contract on generated instances
//! from three qualitatively different regimes: a discrete-only formula, a
//! hybrid discrete/continuous formula, and an unsatisfiable formula.

use pact::{cdm_count, pact_count, CountOutcome, CountReport, CounterConfig};
use pact_benchgen::{cfg_reachability, cps_robustness, hybrid_controller, GenParams, Instance};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// A discrete-only instance (bit-vector projection, bit-vector + array
/// constraints, no continuous variables).
fn bitvec_instance() -> Instance {
    cfg_reachability(&GenParams {
        scale: 2,
        width: 7,
        seed: 9,
    })
}

/// A hybrid instance: bit-vector projection with real- and float-typed
/// side constraints (the paper's CPS robustness workload).
fn hybrid_instance() -> Instance {
    cps_robustness(&GenParams {
        scale: 1,
        width: 6,
        seed: 4,
    })
}

/// An unsatisfiable instance: a generated formula plus a contradictory
/// bound on the projected variable.
fn unsat_instance() -> Instance {
    let mut instance = hybrid_controller(&GenParams {
        scale: 1,
        width: 6,
        seed: 2,
    });
    let mode = instance.projection[0];
    let zero = instance.tm.mk_bv_const(0, 6);
    let impossible = instance.tm.mk_bv_ult(mode, zero).unwrap();
    instance.asserts.push(impossible);
    instance
}

fn count_with_threads(instance: &Instance, threads: usize) -> CountReport {
    let config = CounterConfig {
        iterations_override: Some(7),
        seed: 13,
        ..CounterConfig::default()
    }
    .with_threads(threads);
    let mut tm = instance.tm.clone();
    pact_count(&mut tm, &instance.asserts, &instance.projection, &config)
        .unwrap_or_else(|e| panic!("{} with {threads} threads failed: {e}", instance.name))
}

/// Asserts the deterministic part of two reports is identical (everything
/// except `wall_seconds`, the one field parallelism is allowed to change).
fn assert_reports_match(name: &str, threads: usize, report: &CountReport, baseline: &CountReport) {
    assert_eq!(
        report.outcome, baseline.outcome,
        "{name}: outcome changed with {threads} threads"
    );
    assert_eq!(
        report.stats.oracle_calls, baseline.stats.oracle_calls,
        "{name}: oracle calls changed with {threads} threads"
    );
    assert_eq!(
        report.stats.cells_explored, baseline.stats.cells_explored,
        "{name}: cells explored changed with {threads} threads"
    );
    assert_eq!(
        report.stats.iterations, baseline.stats.iterations,
        "{name}: iteration count changed with {threads} threads"
    );
    assert_eq!(
        report.stats.final_hash_count, baseline.stats.final_hash_count,
        "{name}: final hash count changed with {threads} threads"
    );
}

#[test]
fn bitvec_instance_counts_identically_for_every_thread_count() {
    let instance = bitvec_instance();
    let baseline = count_with_threads(&instance, 1);
    assert!(
        matches!(
            baseline.outcome,
            CountOutcome::Approximate { .. } | CountOutcome::Exact(_)
        ),
        "expected a count, got {:?}",
        baseline.outcome
    );
    for threads in &THREAD_COUNTS[1..] {
        let report = count_with_threads(&instance, *threads);
        assert_reports_match(&instance.name, *threads, &report, &baseline);
    }
}

#[test]
fn hybrid_instance_counts_identically_for_every_thread_count() {
    let instance = hybrid_instance();
    let baseline = count_with_threads(&instance, 1);
    assert!(
        matches!(
            baseline.outcome,
            CountOutcome::Approximate { .. } | CountOutcome::Exact(_)
        ),
        "expected a count, got {:?}",
        baseline.outcome
    );
    for threads in &THREAD_COUNTS[1..] {
        let report = count_with_threads(&instance, *threads);
        assert_reports_match(&instance.name, *threads, &report, &baseline);
    }
}

#[test]
fn unsat_instance_counts_identically_for_every_thread_count() {
    let instance = unsat_instance();
    let baseline = count_with_threads(&instance, 1);
    assert_eq!(baseline.outcome, CountOutcome::Unsatisfiable);
    for threads in &THREAD_COUNTS[1..] {
        let report = count_with_threads(&instance, *threads);
        assert_reports_match(&instance.name, *threads, &report, &baseline);
    }
}

#[test]
fn cdm_baseline_counts_identically_for_every_thread_count() {
    let instance = bitvec_instance();
    let run = |threads: usize| {
        let config = CounterConfig {
            iterations_override: Some(3),
            seed: 5,
            ..CounterConfig::default()
        }
        .with_threads(threads);
        let mut tm = instance.tm.clone();
        cdm_count(&mut tm, &instance.asserts, &instance.projection, &config)
            .expect("cdm count succeeds")
    };
    let baseline = run(1);
    for threads in &THREAD_COUNTS[1..] {
        let report = run(*threads);
        assert_reports_match("cdm", *threads, &report, &baseline);
    }
}

#[test]
fn auto_thread_count_matches_the_serial_outcome() {
    let instance = hybrid_instance();
    let baseline = count_with_threads(&instance, 1);
    let config = CounterConfig {
        iterations_override: Some(7),
        seed: 13,
        parallel: pact::ParallelConfig::auto(),
        ..CounterConfig::default()
    };
    let mut tm = instance.tm.clone();
    let report = pact_count(&mut tm, &instance.asserts, &instance.projection, &config).unwrap();
    assert_reports_match(&instance.name, 0, &report, &baseline);
}
