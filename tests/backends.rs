//! Backend equivalence: the activation-literal incremental oracle must be
//! observationally identical to the rebuilding reference oracle.
//!
//! The two backends answer every `check` with the same verdict (both are
//! complete over the supported fragment), so the counting engine issues the
//! same query sequence against either — the `CountReport` must be
//! bit-identical in every deterministic field across seeds, hash families
//! and thread counts.  The only sanctioned difference is the work profile:
//! the incremental backend reports `rebuilds == 0` where the reference
//! backend pays one rebuild per `pop` that crosses encoded assertions.

use pact::{BackendSpec, CountOutcome, CountReport, CounterConfig, HashFamily, Session};
use pact_ir::{Rational, Sort, TermId, TermManager};

/// The backend spec the old `incremental(bool)` toggle selected.
fn spec(incremental: bool) -> BackendSpec {
    if incremental {
        BackendSpec::Incremental
    } else {
        BackendSpec::Rebuild
    }
}

/// The deterministic slice of a report: everything except wall-clock times
/// and the backend-specific rebuild count.
fn deterministic_parts(report: &CountReport) -> (CountOutcome, u64, u64, u32, u32) {
    (
        report.outcome.clone(),
        report.stats.oracle_calls,
        report.stats.cells_explored,
        report.stats.iterations,
        report.stats.final_hash_count,
    )
}

/// x ≥ 16 over `width` bits: saturates the threshold so the galloping
/// hashing rounds (and their push/pop cycles) run.
fn saturating_instance(width: u32) -> (TermManager, TermId, TermId) {
    let mut tm = TermManager::new();
    let x = tm.mk_var("x", Sort::BitVec(width));
    let c = tm.mk_bv_const(16, width);
    let f = tm.mk_bv_ule(c, x).unwrap();
    (tm, x, f)
}

fn count_with(width: u32, config: CounterConfig, incremental: bool) -> CountReport {
    let (tm, x, f) = saturating_instance(width);
    let mut session = Session::builder(tm)
        .assert(f)
        .project(x)
        .config(config)
        .backend(spec(incremental))
        .build()
        .unwrap();
    session.count().unwrap()
}

#[test]
fn backends_are_bit_identical_across_seeds_and_families() {
    for family in [HashFamily::Xor, HashFamily::Prime, HashFamily::Shift] {
        for seed in [1u64, 7, 42] {
            let config = CounterConfig {
                iterations_override: Some(3),
                seed,
                family,
                ..CounterConfig::default()
            };
            let rebuild = count_with(8, config.clone(), false);
            let incremental = count_with(8, config, true);
            assert_eq!(
                deterministic_parts(&incremental),
                deterministic_parts(&rebuild),
                "family {family}, seed {seed}"
            );
            assert_eq!(
                incremental.stats.rebuilds, 0,
                "family {family}, seed {seed}"
            );
        }
    }
}

#[test]
fn backends_are_bit_identical_with_two_threads() {
    let config = CounterConfig {
        iterations_override: Some(5),
        seed: 42,
        ..CounterConfig::default()
    };
    let serial = count_with(8, config.clone(), false);
    for incremental in [false, true] {
        let parallel = count_with(
            8,
            CounterConfig {
                parallel: pact::ParallelConfig { threads: 2 },
                ..config.clone()
            },
            incremental,
        );
        assert_eq!(
            deterministic_parts(&parallel),
            deterministic_parts(&serial),
            "incremental = {incremental}"
        );
        if incremental {
            assert_eq!(parallel.stats.rebuilds, 0);
        }
    }
}

#[test]
fn incremental_backend_survives_a_quickstart_scale_count_without_rebuilds() {
    // The quickstart's hybrid instance (8-bit b ≥ 32 with a live real
    // constraint): the incremental backend must carry a full multi-round
    // count with zero rebuilds while reproducing the reference report
    // bit-for-bit — the acceptance criterion of the incremental-encoder
    // milestone.
    let build = |incremental: bool| {
        let mut tm = TermManager::new();
        let b = tm.mk_var("b", Sort::BitVec(8));
        let r = tm.mk_var("r", Sort::Real);
        let c = tm.mk_bv_const(32, 8);
        let f1 = tm.mk_bv_ule(c, b).unwrap();
        let zero = tm.mk_real_const(Rational::ZERO);
        let one = tm.mk_real_const(Rational::ONE);
        let f2 = tm.mk_real_lt(zero, r).unwrap();
        let f3 = tm.mk_real_lt(r, one).unwrap();
        let mut session = Session::builder(tm)
            .assert_all(&[f1, f2, f3])
            .project(b)
            .seed(1)
            .iterations(5)
            .backend(spec(incremental))
            .build()
            .unwrap();
        session.count().unwrap()
    };
    let rebuild = build(false);
    let incremental = build(true);
    assert!(matches!(
        incremental.outcome,
        CountOutcome::Approximate { .. }
    ));
    assert_eq!(
        deterministic_parts(&incremental),
        deterministic_parts(&rebuild)
    );
    assert_eq!(incremental.stats.rebuilds, 0);
    // The galloping search really did pop frames: the reference backend paid
    // a rebuild for each of them.
    assert!(rebuild.stats.rebuilds > 0);
    assert!(incremental.stats.oracle_seconds >= 0.0);
}

#[test]
fn cdm_and_enumeration_agree_across_backends() {
    let run = |incremental: bool| {
        let (tm, x, f) = saturating_instance(8);
        let mut session = Session::builder(tm)
            .assert(f)
            .project(x)
            .seed(2)
            .iterations(3)
            .backend(spec(incremental))
            .build()
            .unwrap();
        let exact = session.enumerate(10_000).unwrap();
        let cdm = session.count_cdm().unwrap();
        (exact, cdm)
    };
    let (exact_r, cdm_r) = run(false);
    let (exact_i, cdm_i) = run(true);
    assert_eq!(exact_i.outcome, CountOutcome::Exact(240));
    assert_eq!(deterministic_parts(&exact_i), deterministic_parts(&exact_r));
    assert_eq!(deterministic_parts(&cdm_i), deterministic_parts(&cdm_r));
    assert_eq!(exact_i.stats.rebuilds, 0);
    assert_eq!(cdm_i.stats.rebuilds, 0);
}

#[test]
fn unsatisfiable_and_exact_paths_agree_across_backends() {
    for (bound, expected) in [
        (0u128, CountOutcome::Unsatisfiable),
        (12, CountOutcome::Exact(12)),
    ] {
        let run = |incremental: bool| {
            let mut tm = TermManager::new();
            let x = tm.mk_var("x", Sort::BitVec(6));
            let c = tm.mk_bv_const(bound, 6);
            let f = tm.mk_bv_ult(x, c).unwrap();
            let mut session = Session::builder(tm)
                .assert(f)
                .project(x)
                .seed(3)
                .iterations(3)
                .backend(spec(incremental))
                .build()
                .unwrap();
            session.count().unwrap()
        };
        let rebuild = run(false);
        let incremental = run(true);
        assert_eq!(incremental.outcome, expected);
        assert_eq!(
            deterministic_parts(&incremental),
            deterministic_parts(&rebuild)
        );
    }
}
