//! Property-based tests on the workspace's core invariants.
//!
//! These cover the load-bearing equivalences of the reproduction:
//! the bit-blasted oracle must agree with the reference evaluator, hash
//! constraints must partition the space, rational arithmetic must behave like
//! arithmetic, and the exact counting path must match brute force.

use std::collections::HashMap;

use proptest::prelude::*;

use pact::{median, pact_count, relative_error, BackendSpec, CountOutcome, CounterConfig};
use pact_hash::{generate, HashFamily};
use pact_ir::{BvValue, Rational, Sort, TermId, TermManager, Value};
use pact_solver::{Context, SolverResult};
use rand::{rngs::StdRng, SeedableRng};

// ---------------------------------------------------------------------------
// Rational arithmetic
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rational_addition_is_commutative_and_associative(
        a in -1000i128..1000, b in 1i128..50, c in -1000i128..1000, d in 1i128..50,
        e in -1000i128..1000, f in 1i128..50,
    ) {
        let x = Rational::new(a, b);
        let y = Rational::new(c, d);
        let z = Rational::new(e, f);
        prop_assert_eq!(x + y, y + x);
        prop_assert_eq!((x + y) + z, x + (y + z));
        prop_assert_eq!(x - x, Rational::ZERO);
    }

    #[test]
    fn rational_ordering_is_consistent_with_subtraction(
        a in -1000i128..1000, b in 1i128..50, c in -1000i128..1000, d in 1i128..50,
    ) {
        let x = Rational::new(a, b);
        let y = Rational::new(c, d);
        prop_assert_eq!(x < y, (x - y).is_negative());
        prop_assert_eq!(x == y, (x - y).is_zero());
    }

    #[test]
    fn rational_parse_display_roundtrip(a in -10_000i128..10_000, b in 1i128..1000) {
        let x = Rational::new(a, b);
        prop_assert_eq!(Rational::parse(&x.to_string()), Some(x));
    }
}

// ---------------------------------------------------------------------------
// Bit-vector value semantics
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bv_extract_concat_roundtrip(value in any::<u64>(), split in 1u32..31) {
        let v = BvValue::new(value as u128, 32);
        let hi = v.extract(31, split);
        let lo = v.extract(split - 1, 0);
        prop_assert_eq!(hi.concat(&lo), v);
    }

    #[test]
    fn bv_arithmetic_matches_wrapping_semantics(a in any::<u16>(), b in any::<u16>()) {
        let x = BvValue::new(a as u128, 16);
        let y = BvValue::new(b as u128, 16);
        prop_assert_eq!(x.wrapping_add(&y).as_u128(), a.wrapping_add(b) as u128);
        prop_assert_eq!(x.wrapping_mul(&y).as_u128(), a.wrapping_mul(b) as u128);
        prop_assert_eq!(x.xor(&y).as_u128(), (a ^ b) as u128);
    }
}

// ---------------------------------------------------------------------------
// Oracle vs. reference evaluator
// ---------------------------------------------------------------------------

/// A small random BV formula over one 5-bit variable, built from a seed.
fn build_formula(tm: &mut TermManager, x: TermId, spec: &[(u8, u8)]) -> Vec<TermId> {
    let width = 5;
    let mut asserts = Vec::new();
    for &(op, raw) in spec {
        let value = (raw % 32) as u128;
        let c = tm.mk_bv_const(value, width);
        let t = match op % 5 {
            0 => tm.mk_bv_ule(c, x).unwrap(),
            1 => tm.mk_bv_ult(x, c).unwrap(),
            2 => {
                let masked = tm.mk_bv_and(x, c).unwrap();
                let zero = tm.mk_bv_const(0, width);
                let eq = tm.mk_eq(masked, zero);
                tm.mk_not(eq)
            }
            3 => {
                let sum = tm.mk_bv_add(x, c).unwrap();
                let bound = tm.mk_bv_const(24, width);
                tm.mk_bv_ule(sum, bound).unwrap()
            }
            _ => {
                let eq = tm.mk_eq(x, c);
                tm.mk_not(eq)
            }
        };
        asserts.push(t);
    }
    asserts
}

fn brute_force(tm: &TermManager, asserts: &[TermId], x: TermId) -> u64 {
    (0..32u128)
        .filter(|&v| {
            let mut asg = HashMap::new();
            asg.insert(x, Value::Bv(BvValue::new(v, 5)));
            asserts
                .iter()
                .all(|&f| tm.eval(f, &asg) == Some(Value::Bool(true)))
        })
        .count() as u64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn exact_counting_matches_brute_force(spec in proptest::collection::vec((0u8..5, any::<u8>()), 1..4)) {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(5));
        let asserts = build_formula(&mut tm, x, &spec);
        let expected = brute_force(&tm, &asserts, x);
        let report = pact_count(&mut tm, &asserts, &[x], &CounterConfig::fast()).unwrap();
        let outcome = report.outcome;
        match outcome {
            CountOutcome::Exact(n) => prop_assert_eq!(n, expected),
            CountOutcome::Unsatisfiable => prop_assert_eq!(expected, 0),
            other => prop_assert!(false, "unexpected outcome {:?}", other),
        }
    }

    #[test]
    fn oracle_models_satisfy_the_reference_evaluator(spec in proptest::collection::vec((0u8..5, any::<u8>()), 1..4)) {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(5));
        let asserts = build_formula(&mut tm, x, &spec);
        let mut ctx = Context::new();
        ctx.track_var(x);
        for &a in &asserts {
            ctx.assert_term(a);
        }
        match ctx.check(&mut tm).unwrap() {
            SolverResult::Sat => {
                let v = ctx.model_value(&tm, x).unwrap();
                let mut asg = HashMap::new();
                asg.insert(x, v);
                for &a in &asserts {
                    prop_assert_eq!(tm.eval(a, &asg), Some(Value::Bool(true)));
                }
            }
            SolverResult::Unsat => {
                prop_assert_eq!(brute_force(&tm, &asserts, x), 0);
            }
            SolverResult::Unknown => prop_assert!(false, "unexpected unknown"),
        }
    }
}

// ---------------------------------------------------------------------------
// Hash-consed term store invariants
// ---------------------------------------------------------------------------
//
// The term manager interns terms by `(op, children, sort)`: structural
// identity *is* id identity.  Everything downstream — preprocess caches
// keyed on term ids, bit-identical parallel rounds over shared snapshots —
// leans on the three invariants pinned here.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn building_the_same_term_twice_interns_to_the_same_id(
        spec in proptest::collection::vec((0u8..5, any::<u8>()), 1..6),
    ) {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(5));
        let first = build_formula(&mut tm, x, &spec);
        let size = tm.len();
        let second = build_formula(&mut tm, x, &spec);
        prop_assert_eq!(&first, &second, "identical construction must intern to identical ids");
        prop_assert_eq!(tm.len(), size, "the second build must allocate nothing");
    }

    #[test]
    fn interned_terms_survive_a_print_parse_round_trip(
        spec in proptest::collection::vec((0u8..5, any::<u8>()), 1..6),
    ) {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(5));
        let asserts = build_formula(&mut tm, x, &spec);
        for &t in &asserts {
            let rendered = pact_ir::printer::term_to_smtlib(&tm, t);
            // Re-parsing the rendering resolves to the *existing* interned
            // node — not a structurally equal copy with a fresh id.
            let reparsed = pact_ir::parser::parse_term(&mut tm, &rendered).unwrap();
            prop_assert_eq!(reparsed, t, "round-trip must hit the interned node");
            prop_assert_eq!(
                pact_ir::printer::term_to_smtlib(&tm, reparsed),
                rendered,
                "printing is stable across the round-trip"
            );
        }
    }

    #[test]
    fn snapshot_sharing_across_threads_observes_identical_terms(
        spec in proptest::collection::vec((0u8..5, any::<u8>()), 1..6),
    ) {
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(5));
        let asserts = build_formula(&mut tm, x, &spec);
        let rendered: Vec<String> = asserts
            .iter()
            .map(|&t| pact_ir::printer::term_to_smtlib(&tm, t))
            .collect();
        let snapshot = tm.snapshot();
        // Each thread opens its own manager over the shared snapshot,
        // renders the frozen terms, and rebuilds the formula from scratch:
        // both the observations and the fresh allocations must be identical
        // everywhere, or parallel rounds could not be bit-reproducible.
        let observations: Vec<(Vec<String>, Vec<TermId>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let snapshot = std::sync::Arc::clone(&snapshot);
                    let spec = spec.clone();
                    let asserts = &asserts;
                    scope.spawn(move || {
                        let mut local = TermManager::from_snapshot(snapshot);
                        let views: Vec<String> = asserts
                            .iter()
                            .map(|&t| pact_ir::printer::term_to_smtlib(&local, t))
                            .collect();
                        let rebuilt = build_formula(&mut local, x, &spec);
                        (views, rebuilt)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("snapshot reader panicked"))
                .collect()
        });
        for (views, rebuilt) in observations {
            prop_assert_eq!(&views, &rendered, "shared snapshot must render identically");
            prop_assert_eq!(&rebuilt, &asserts, "rebuilds over the snapshot reuse interned ids");
        }
    }
}

// ---------------------------------------------------------------------------
// Accuracy metrics: relative_error and median edge cases
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn relative_error_is_finite_symmetric_and_nonnegative_on_positive_counts(
        a in 1u64..1_000_000_000, b in 1u64..1_000_000_000,
    ) {
        // Fractional counts (estimates are rarely integers).
        let x = a as f64 / 16.0;
        let y = b as f64 / 16.0;
        let e1 = relative_error(x, y).expect("positive counts are in the domain");
        let e2 = relative_error(y, x).expect("positive counts are in the domain");
        prop_assert!(e1.is_finite() && !e1.is_nan());
        prop_assert!(e1 >= 0.0);
        // The metric is symmetric by construction: max(b/s, s/b) − 1.
        prop_assert!((e1 - e2).abs() <= 1e-12 * e1.max(1.0));
        if a == b {
            prop_assert_eq!(e1, 0.0);
        }
    }

    #[test]
    fn relative_error_rejects_zero_and_negative_counts(
        positive in 1u64..1_000_000, negative in 1i64..1_000_000,
    ) {
        let pos = positive as f64;
        let neg = -(negative as f64);
        // Zero on exactly one side: undefined.
        prop_assert_eq!(relative_error(0.0, pos), None);
        prop_assert_eq!(relative_error(pos, 0.0), None);
        // Negative counts: undefined on either side.
        prop_assert_eq!(relative_error(neg, pos), None);
        prop_assert_eq!(relative_error(pos, neg), None);
        prop_assert_eq!(relative_error(neg, neg), None);
        // Two zero counts are a perfect match.
        prop_assert_eq!(relative_error(0.0, 0.0), Some(0.0));
    }

    #[test]
    fn median_returns_a_nan_free_element_at_the_lower_middle(
        raw in proptest::collection::vec(0u32..1_000_000, 1..40),
    ) {
        let values: Vec<f64> = raw.iter().map(|&v| v as f64 / 8.0).collect();
        let m = median(&values).expect("non-empty list has a median");
        prop_assert!(!m.is_nan());
        // The median is always one of the inputs (no averaging for
        // even-length lists: ApproxMC-style lower median)...
        prop_assert!(values.contains(&m));
        // ...specifically the element at index (n-1)/2 of the sorted list,
        // for odd and even lengths alike.
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN inputs"));
        prop_assert_eq!(m, sorted[(sorted.len() - 1) / 2]);
        // Single-element lists are their own median.
        if values.len() == 1 {
            prop_assert_eq!(m, values[0]);
        }
        // At least half the values are >= the median and at least half <=.
        let le = values.iter().filter(|&&v| v <= m).count();
        let ge = values.iter().filter(|&&v| v >= m).count();
        prop_assert!(2 * le >= values.len());
        prop_assert!(2 * ge >= values.len());
    }
}

// ---------------------------------------------------------------------------
// BackendSpec Display/FromStr round-trip
// ---------------------------------------------------------------------------
//
// The service front-end parses backend specs out of untrusted request
// payloads, so the spec grammar is load-bearing: every spec must survive a
// Display → FromStr round-trip bit-identically, and malformed inputs must
// fail with a readable diagnostic rather than a silent default.

/// Decodes an arbitrary `(kind, depth, workers)` triple into a spec,
/// covering every variant including the parameterised forms.  Parameters
/// are expected pre-clamped to the valid ranges — out-of-range values are
/// a parse *error* now, pinned separately below.
fn backend_spec_from(kind: usize, depth: usize, workers: usize) -> BackendSpec {
    match kind % 5 {
        0 => BackendSpec::Rebuild,
        1 => BackendSpec::Incremental,
        2 => BackendSpec::Portfolio { workers },
        3 => BackendSpec::Cube { depth, workers },
        _ => BackendSpec::Adaptive,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn backend_spec_display_fromstr_roundtrip(
        kind in 0usize..5, depth in 1usize..=6, workers in 1usize..=8,
    ) {
        let spec = backend_spec_from(kind, depth, workers);
        let rendered = spec.to_string();
        prop_assert_eq!(rendered.parse::<BackendSpec>(), Ok(spec));
        // Rendering is stable: round-tripping the parse renders identically.
        let reparsed: BackendSpec = rendered.parse().unwrap();
        prop_assert_eq!(reparsed.to_string(), rendered);
    }

    #[test]
    fn backend_spec_rejects_malformed_parameters_readably(
        kind in 0usize..2, n in 0u32..10_000,
    ) {
        // A non-numeric parameter after a valid head is always rejected,
        // and the diagnostic names both the bad parameter and the input.
        // (The vendored proptest shim has no string strategies, so the junk
        // parameter is synthesised from a number; the leading letter makes
        // it unparseable as usize.)
        let junk = format!("w{n}");
        let head = if kind == 0 { "portfolio" } else { "cube" };
        let input = format!("{head}:{junk}");
        let err = input.parse::<BackendSpec>().unwrap_err();
        prop_assert!(err.contains(&junk), "diagnostic {} names the parameter", err);
        prop_assert!(err.contains(&input), "diagnostic {} names the input", err);
    }

    #[test]
    fn backend_spec_rejects_unknown_heads_with_the_menu(n in 0u32..10_000) {
        // Never collides with a real head, whatever the number.
        let junk = format!("warp{n}");
        let err = junk.parse::<BackendSpec>().unwrap_err();
        prop_assert!(err.contains(&junk), "diagnostic {} names the input", err);
        // The error lists every accepted form, so a service client can fix
        // the payload without reading our source.
        for expected in ["rebuild", "incremental", "portfolio", "cube", "adaptive"] {
            prop_assert!(err.contains(expected), "diagnostic {} lists {}", err, expected);
        }
    }

    #[test]
    fn backend_spec_rejects_out_of_range_parameters_with_the_range(
        kind in 0usize..3, excess in 1usize..100,
    ) {
        // A numeric parameter outside the backend's supported range is a
        // parse error naming the valid range — zero workers or a cube
        // depth past `MAX_CUBE_DEPTH` used to parse and then behave as a
        // silent clamp (or a panic) deep in the oracle.
        let input = match kind {
            0 => format!("portfolio:{}", pact_solver::MAX_PORTFOLIO_WORKERS + excess),
            1 => format!("cube:{}", pact_solver::MAX_CUBE_DEPTH + excess),
            _ => format!("cube:3:{}", pact_solver::MAX_CUBE_WORKERS + excess),
        };
        let err = input.parse::<BackendSpec>().unwrap_err();
        prop_assert!(err.contains("must be in 1..="), "diagnostic {} names the range", err);
        prop_assert!(err.contains(&input), "diagnostic {} names the input", err);
    }
}

#[test]
fn backend_spec_parses_shorthand_defaults_and_rejects_trailing_parts() {
    // Omitted counts fall back to the harness defaults...
    assert_eq!(
        "portfolio".parse::<BackendSpec>(),
        Ok(BackendSpec::Portfolio { workers: 2 })
    );
    assert_eq!(
        "cube".parse::<BackendSpec>(),
        Ok(BackendSpec::Cube {
            depth: 3,
            workers: 2
        })
    );
    assert_eq!(
        "cube:4".parse::<BackendSpec>(),
        Ok(BackendSpec::Cube {
            depth: 4,
            workers: 2
        })
    );
    // ...while excess parameters are an error, not silently ignored.
    let err = "rebuild:1".parse::<BackendSpec>().unwrap_err();
    assert!(err.contains("rebuild:1"), "{err}");
    let err = "cube:3:2:9".parse::<BackendSpec>().unwrap_err();
    assert!(err.contains("cube:3:2:9"), "{err}");
    // The adaptive policy backend takes no parameters at all.
    assert_eq!("adaptive".parse::<BackendSpec>(), Ok(BackendSpec::Adaptive));
    let err = "adaptive:2".parse::<BackendSpec>().unwrap_err();
    assert!(err.contains("adaptive:2"), "{err}");
}

#[test]
fn backend_spec_rejects_zero_and_oversized_parameters() {
    // The satellite fix this pins: `cube:0:2`, `cube:3:0` and
    // `portfolio:0` used to parse (and later panic or silently clamp in
    // the backend); now every parameter is validated at the FromStr
    // boundary with a diagnostic naming the valid range.
    for input in [
        "portfolio:0",
        "portfolio:9",
        "cube:0:2",
        "cube:3:0",
        "cube:7",
        "cube:7:2",
        "cube:3:9",
    ] {
        let err = input.parse::<BackendSpec>().unwrap_err();
        assert!(err.contains("must be in 1..="), "{input}: {err}");
        assert!(err.contains(input), "{input}: {err}");
    }
    // The range boundaries themselves are valid.
    assert_eq!(
        "portfolio:8".parse::<BackendSpec>(),
        Ok(BackendSpec::Portfolio { workers: 8 })
    );
    assert_eq!(
        "cube:6:8".parse::<BackendSpec>(),
        Ok(BackendSpec::Cube {
            depth: 6,
            workers: 8
        })
    );
    assert_eq!(
        "cube:1:1".parse::<BackendSpec>(),
        Ok(BackendSpec::Cube {
            depth: 1,
            workers: 1
        })
    );
    assert_eq!(
        "portfolio:1".parse::<BackendSpec>(),
        Ok(BackendSpec::Portfolio { workers: 1 })
    );
}

// ---------------------------------------------------------------------------
// Hash constraints partition the projected space
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn solver_enumeration_agrees_with_hash_evaluation(seed in 0u64..500, family_idx in 0usize..3) {
        let family = HashFamily::ALL[family_idx];
        let mut tm = TermManager::new();
        let x = tm.mk_var("x", Sort::BitVec(4));
        let mut rng = StdRng::seed_from_u64(seed);
        let ell = if family == HashFamily::Xor { 1 } else { 2 };
        let h = generate(&tm, &[x], ell, family, &mut rng);

        // Expected cell: evaluate the hash on every value.
        let expected: Vec<u128> = (0..16u128)
            .filter(|&v| {
                let values: HashMap<TermId, BvValue> =
                    [(x, BvValue::new(v, 4))].into_iter().collect();
                h.eval(&values)
            })
            .collect();

        // Observed cell: enumerate the models of the asserted constraint.
        let mut ctx = Context::new();
        ctx.track_var(x);
        h.assert_into(&mut ctx, &mut tm);
        let mut observed = Vec::new();
        loop {
            match ctx.check(&mut tm).unwrap() {
                SolverResult::Sat => {
                    let v = ctx.model_value(&tm, x).unwrap().as_bv().unwrap();
                    observed.push(v.as_u128());
                    prop_assert!(observed.len() <= 16, "runaway enumeration");
                    let c = tm.mk_bv_value(v);
                    let eq = tm.mk_eq(x, c);
                    let block = tm.mk_not(eq);
                    ctx.assert_term(block);
                }
                SolverResult::Unsat => break,
                SolverResult::Unknown => prop_assert!(false, "unexpected unknown"),
            }
        }
        observed.sort_unstable();
        prop_assert_eq!(observed, expected);
    }
}
