//! Contract tests for `pact-service`: the counting-as-a-service front-end.
//!
//! These pin the service's load-bearing guarantees end to end, through the
//! public API only:
//!
//! * admission control rejects (rather than blocks or buffers) once the
//!   bounded queue saturates;
//! * per-request deadlines are end-to-end from submission and map onto the
//!   engine's `Timeout`-with-partial-statistics semantics;
//! * cancellation — mid-round or while queued — resolves cleanly, and
//!   shutdown of any flavour leaves zero live shard threads (the same
//!   live-thread probe discipline as `tests/portfolio.rs`);
//! * scheduling is FIFO within priority, with higher priorities served
//!   first;
//! * a service answer is bit-identical to a direct `Session::count` under
//!   the request's own configuration — the service adds scheduling, not
//!   noise;
//! * metrics count terminal resolutions: `served` covers only requests
//!   that truly finished, with cancellations, deadline expiries and
//!   failures in their own counters (a regression fix — `served` used to
//!   be bumped at admission).

use std::time::Duration;

use pact::{BackendSpec, CountOutcome, Session};
use pact_ir::{Sort, TermId, TermManager};
use pact_service::{
    CountRequest, CountingService, Disposition, Priority, RequestEvent, ServiceConfig, ServiceError,
};

/// A quick saturating instance: `x >= 16` over 8 bits (240 models).
fn quick_problem() -> (TermManager, TermId, TermId) {
    let mut tm = TermManager::new();
    let x = tm.mk_var("x", Sort::BitVec(8));
    let c = tm.mk_bv_const(16, 8);
    let f = tm.mk_bv_ule(c, x).unwrap();
    (tm, f, x)
}

fn quick_request() -> CountRequest {
    let (tm, f, x) = quick_problem();
    CountRequest::new(tm)
        .assert(f)
        .project(x)
        .seed(42)
        .iterations(3)
}

/// A request that runs long enough to be observed mid-flight: a wide
/// saturating instance with far more rounds than any test waits for.
fn long_request() -> CountRequest {
    let mut tm = TermManager::new();
    let x = tm.mk_var("x", Sort::BitVec(12));
    let c = tm.mk_bv_const(2048, 12);
    let f = tm.mk_bv_ule(c, x).unwrap();
    CountRequest::new(tm)
        .assert(f)
        .project(x)
        .seed(1)
        .iterations(2000)
}

#[test]
fn saturated_queue_rejects_with_typed_error_and_nothing_enqueued() {
    let service = CountingService::new(ServiceConfig {
        shards: 1,
        queue_capacity: 2,
    });
    // Occupy the single shard so queued requests stay queued.
    let mut blocker = service.submit(long_request()).unwrap();
    blocker.wait_for_event(|e| matches!(e, RequestEvent::Admitted { .. }));

    // Fill the queue to capacity, then one more: typed rejection.
    let _queued: Vec<_> = (0..2)
        .map(|_| service.submit(quick_request()).unwrap())
        .collect();
    let err = service.submit(quick_request()).unwrap_err();
    assert_eq!(err, ServiceError::QueueFull { capacity: 2 });

    let metrics = service.metrics();
    assert_eq!(metrics.submitted, 3);
    assert_eq!(metrics.rejected, 1);
    assert_eq!(metrics.queue_depth, 2);

    blocker.cancel();
    assert!(blocker.wait().is_ok());
    service.abort();
}

#[test]
fn deadline_maps_onto_timeout_with_partial_stats() {
    let service = CountingService::new(ServiceConfig {
        shards: 1,
        queue_capacity: 8,
    });
    // A zero deadline is fully consumed before the shard even starts: the
    // engine's immediate-timeout path, with partial statistics intact.
    // The shard computes the remaining budget with `saturating_sub`, so a
    // fully-consumed deadline reaches the engine as `Some(Duration::ZERO)`
    // — which must expire *before* the first oracle check starts, not
    // after it.
    let mut handle = service
        .submit(quick_request().deadline(Duration::ZERO))
        .unwrap();
    let report = handle.wait().unwrap();
    assert_eq!(report.report.outcome, CountOutcome::Timeout);
    assert_eq!(
        report.report.stats.oracle_calls, 0,
        "a zero remaining deadline must expire before any oracle check"
    );
    assert!(report.report.stats.wall_seconds >= 0.0);
    let terminal = handle.wait_for_event(RequestEvent::is_terminal).unwrap();
    assert_eq!(terminal, RequestEvent::TimedOut);
    let metrics = service.metrics();
    assert_eq!(metrics.timed_out, 1);
    assert_eq!(metrics.served_per_shard.iter().sum::<u64>(), 0);
    service.shutdown();
}

#[test]
fn deadline_is_end_to_end_so_queue_wait_counts_against_it() {
    let service = CountingService::new(ServiceConfig {
        shards: 1,
        queue_capacity: 8,
    });
    let mut blocker = service.submit(long_request()).unwrap();
    blocker.wait_for_event(|e| matches!(e, RequestEvent::Admitted { .. }));

    // The deadline expires while the request waits behind the blocker.
    let mut starved = service
        .submit(quick_request().deadline(Duration::from_millis(5)))
        .unwrap();
    std::thread::sleep(Duration::from_millis(30));
    blocker.cancel();
    assert!(blocker.wait().is_ok());

    let report = starved.wait().unwrap();
    assert_eq!(report.report.outcome, CountOutcome::Timeout);
    assert!(
        report.queue_seconds >= 0.005,
        "spent {}s in the queue",
        report.queue_seconds
    );
    service.shutdown();
}

#[test]
fn cancellation_mid_round_resolves_partial_and_leaves_no_threads() {
    let service = CountingService::new(ServiceConfig {
        shards: 2,
        queue_capacity: 8,
    });
    assert_eq!(service.live_shard_threads(), 2);

    let mut handle = service.submit(long_request()).unwrap();
    // Cancel only once the count is demonstrably mid-flight: a progress
    // event means the engine is inside its rounds.
    handle
        .wait_for_event(|e| matches!(e, RequestEvent::Progress(_)))
        .expect("a running count emits progress");
    handle.cancel();

    let report = handle.wait().unwrap();
    assert_eq!(report.report.outcome, CountOutcome::Timeout);
    // Partial statistics from the interrupted run are reported, not lost.
    assert!(report.report.stats.cells_explored >= 1);
    let terminal = handle.wait_for_event(RequestEvent::is_terminal).unwrap();
    assert_eq!(terminal, RequestEvent::Cancelled);

    // The zero-leaked-threads invariant, via the same live-thread probe
    // discipline as the solver pools.
    let probe = |s: &CountingService| s.live_shard_threads();
    assert_eq!(probe(&service), 2);
    service.shutdown();
    // `shutdown` consumed the service; a fresh one proves drop-abort too.
    let dropped = CountingService::new(ServiceConfig {
        shards: 2,
        queue_capacity: 8,
    });
    assert_eq!(probe(&dropped), 2);
    drop(dropped);
}

#[test]
fn abort_cancels_queued_requests_without_serving_them() {
    let service = CountingService::new(ServiceConfig {
        shards: 1,
        queue_capacity: 8,
    });
    let mut blocker = service.submit(long_request()).unwrap();
    blocker.wait_for_event(|e| matches!(e, RequestEvent::Admitted { .. }));
    let mut queued = service.submit(quick_request()).unwrap();

    service.abort();

    // The in-flight request resolved with a partial report...
    let report = blocker.wait().unwrap();
    assert_eq!(report.report.outcome, CountOutcome::Timeout);
    // ...and the queued one was resolved as cancelled without a shard.
    let report = queued.wait().unwrap();
    assert_eq!(report.shard, None);
    assert_eq!(report.report.outcome, CountOutcome::Timeout);
    let terminal = queued.wait_for_event(RequestEvent::is_terminal).unwrap();
    assert_eq!(terminal, RequestEvent::Cancelled);
}

#[test]
fn scheduling_is_fifo_within_priority_and_urgent_first() {
    let service = CountingService::new(ServiceConfig {
        shards: 1,
        queue_capacity: 8,
    });
    let mut blocker = service.submit(long_request()).unwrap();
    blocker.wait_for_event(|e| matches!(e, RequestEvent::Admitted { .. }));

    // Submission order deliberately inverts priority order.  Every queued
    // request is itself long-running, so at any moment exactly one of them
    // can have been admitted — which makes the service order directly
    // observable: poll for the one admitted request, record it, cancel it,
    // and repeat.
    let mut entries = [
        (
            "batch",
            service
                .submit(long_request().priority(Priority::Batch))
                .unwrap(),
        ),
        ("normal_a", service.submit(long_request()).unwrap()),
        ("normal_b", service.submit(long_request()).unwrap()),
        (
            "urgent",
            service
                .submit(long_request().priority(Priority::Urgent))
                .unwrap(),
        ),
    ];

    blocker.cancel();
    assert!(blocker.wait().is_ok());

    let mut order: Vec<&str> = Vec::new();
    while order.len() < entries.len() {
        let admitted = 'poll: loop {
            for (i, (name, handle)) in entries.iter_mut().enumerate() {
                if order.contains(name) {
                    continue;
                }
                while let Some(event) = handle.try_next_event() {
                    if matches!(event, RequestEvent::Admitted { .. }) {
                        break 'poll i;
                    }
                }
            }
            std::thread::sleep(Duration::from_millis(1));
        };
        let (name, handle) = &mut entries[admitted];
        order.push(name);
        handle.cancel();
        assert!(handle.wait().is_ok());
    }
    assert_eq!(order, vec!["urgent", "normal_a", "normal_b", "batch"]);
    service.shutdown();
}

#[test]
fn concurrent_identical_requests_are_bit_identical_to_direct_sessions() {
    let backends = [
        BackendSpec::Rebuild,
        BackendSpec::Incremental,
        BackendSpec::Cube {
            depth: 2,
            workers: 2,
        },
    ];
    let service = CountingService::new(ServiceConfig {
        shards: 2,
        queue_capacity: 64,
    });

    for backend in backends {
        // The ground truth: a direct session under the request's own
        // configuration (single-threaded rounds, same seed and backend).
        let reference_request = quick_request().backend(backend);
        let config = reference_request.counter_config();
        let (tm, f, x) = quick_problem();
        let mut session = Session::builder(tm)
            .assert(f)
            .project(x)
            .config(config)
            .build()
            .unwrap();
        let reference = session.count().unwrap();

        // Many concurrent copies through the service, racing on 2 shards.
        let mut handles: Vec<_> = (0..8)
            .map(|_| service.submit(quick_request().backend(backend)).unwrap())
            .collect();
        for handle in &mut handles {
            let report = handle.wait().unwrap();
            assert_eq!(report.report.outcome, reference.outcome);
            assert_eq!(
                report.report.stats.oracle_calls,
                reference.stats.oracle_calls
            );
            assert_eq!(
                report.report.stats.cells_explored,
                reference.stats.cells_explored
            );
        }
    }
    service.shutdown();
}

#[test]
fn served_counts_terminal_finishes_not_admissions() {
    // The accounting regression this PR fixes: `served` used to be bumped
    // when a shard *admitted* a ticket, so a request that was subsequently
    // cancelled mid-flight (or expired on its deadline) still counted as
    // served.  Now every ticket resolves into exactly one terminal bucket,
    // and `served` stays at the number of requests that truly finished.
    let service = CountingService::new(ServiceConfig {
        shards: 1,
        queue_capacity: 8,
    });

    // One request that truly finishes.
    let mut finished = service.submit(quick_request()).unwrap();
    assert!(finished.wait().is_ok());

    // One cancelled mid-flight: demonstrably admitted and inside its
    // rounds (a progress event) before the cancel lands.
    let mut cancelled = service.submit(long_request()).unwrap();
    cancelled
        .wait_for_event(|e| matches!(e, RequestEvent::Progress(_)))
        .expect("a running count emits progress");
    cancelled.cancel();
    assert!(cancelled.wait().is_ok());
    let terminal = cancelled.wait_for_event(RequestEvent::is_terminal).unwrap();
    assert_eq!(terminal, RequestEvent::Cancelled);

    // One expired on a zero deadline.
    let mut starved = service
        .submit(quick_request().deadline(Duration::ZERO))
        .unwrap();
    assert!(starved.wait().is_ok());

    // Counters are bumped before the result delivery, so by the time the
    // waits above returned the metrics already hold the final split: three
    // admissions, one of each disposition, and `served` stuck at the one
    // request that actually finished.
    let metrics = service.metrics();
    assert_eq!(metrics.submitted, 3);
    assert_eq!(
        metrics.served_per_shard.iter().sum::<u64>(),
        1,
        "served must count terminal finishes, not admissions: {metrics:?}"
    );
    assert_eq!(metrics.cancelled, 1, "{metrics:?}");
    assert_eq!(metrics.timed_out, 1, "{metrics:?}");
    assert_eq!(metrics.failed, 0, "{metrics:?}");
    service.shutdown();
}

#[test]
fn adaptive_backend_rides_the_service_and_reports_policy_stats() {
    // The adaptive policy oracle is selectable per request like any other
    // backend, and its policy accounting flows into the report the service
    // returns: every oracle call is attributed to exactly one backend slot.
    let service = CountingService::new(ServiceConfig {
        shards: 1,
        queue_capacity: 8,
    });
    let mut handle = service
        .submit(quick_request().backend(BackendSpec::Adaptive))
        .unwrap();
    let report = handle.wait().unwrap();
    assert!(matches!(
        report.report.outcome,
        CountOutcome::Approximate { .. } | CountOutcome::Exact(_)
    ));
    let stats = &report.report.stats;
    assert_eq!(
        stats.policy_backend_checks.iter().sum::<u64>(),
        stats.oracle_calls,
        "every oracle call lands in exactly one policy slot: {stats:?}"
    );
    service.shutdown();
}

#[test]
fn dispositions_distinguish_cancelled_from_timed_out_and_completed() {
    let service = CountingService::new(ServiceConfig {
        shards: 1,
        queue_capacity: 8,
    });

    // Completed: a decisive count.
    let mut finished = service.submit(quick_request()).unwrap();
    let report = finished.wait().unwrap();
    assert_eq!(report.disposition, Disposition::Completed);
    assert!(report.cost_estimate >= 1);

    // Timed out: a zero deadline expires before the first oracle check.
    let mut starved = service
        .submit(quick_request().deadline(Duration::ZERO))
        .unwrap();
    let report = starved.wait().unwrap();
    assert_eq!(report.disposition, Disposition::TimedOut);

    // Cancelled mid-flight: distinguishable from the deadline expiry even
    // though both surface the engine's `Timeout`-flavoured outcome.
    let mut cancelled = service.submit(long_request()).unwrap();
    cancelled
        .wait_for_event(|e| matches!(e, RequestEvent::Progress(_)))
        .expect("a running count emits progress");
    cancelled.cancel();
    let report = cancelled.wait().unwrap();
    assert_eq!(report.disposition, Disposition::Cancelled);

    // Cancelled while still queued: the shard that eventually pops the
    // dead ticket stands down and reports the same disposition.
    let mut blocker = service.submit(long_request()).unwrap();
    blocker.wait_for_event(|e| matches!(e, RequestEvent::Admitted { .. }));
    let mut queued = service.submit(quick_request()).unwrap();
    queued.cancel();
    blocker.cancel();
    assert!(blocker.wait().is_ok());
    let report = queued.wait().unwrap();
    assert_eq!(report.disposition, Disposition::Cancelled);
    assert_eq!(report.report.stats.oracle_calls, 0, "it never ran");
    service.shutdown();
}

#[test]
fn cancelled_queued_requests_release_their_admission_slot() {
    // The admission regression this PR fixes: a ticket cancelled while
    // still queued used to keep holding its queue slot (and inflating
    // `queue_depth`) until a shard got around to discarding it.  Live
    // accounting must exclude cancelled tickets immediately.
    let service = CountingService::new(ServiceConfig {
        shards: 1,
        queue_capacity: 2,
    });
    let mut blocker = service.submit(long_request()).unwrap();
    blocker.wait_for_event(|e| matches!(e, RequestEvent::Admitted { .. }));

    // Fill the queue to capacity; the next submission is rejected.
    let mut queued_a = service.submit(quick_request()).unwrap();
    let _queued_b = service.submit(quick_request()).unwrap();
    assert!(matches!(
        service.submit(quick_request()),
        Err(ServiceError::QueueFull { .. })
    ));
    assert_eq!(service.metrics().queue_depth, 2);

    // Cancelling a queued ticket frees its slot at once: the very next
    // submission is admitted without any shard having run in between (the
    // single shard is still occupied by the blocker, so the dead ticket is
    // still physically in the deque — only the *accounting* is live-only).
    queued_a.cancel();
    assert_eq!(
        service.metrics().queue_depth,
        1,
        "queue_depth counts live tickets only"
    );
    let mut replacement = service.submit(quick_request()).unwrap();

    blocker.cancel();
    assert!(blocker.wait().is_ok());
    assert_eq!(queued_a.wait().unwrap().disposition, Disposition::Cancelled);
    assert_eq!(
        replacement.wait().unwrap().disposition,
        Disposition::Completed
    );
    service.shutdown();
}

#[test]
fn a_huge_batch_request_does_not_block_small_urgent_ones() {
    // Size-aware placement: with the big batch request running on one
    // shard, small urgent requests land on (or are stolen by) the other
    // shard and complete while it is still running.
    let service = CountingService::new(ServiceConfig {
        shards: 2,
        queue_capacity: 16,
    });
    let mut big = service
        .submit(long_request().priority(Priority::Batch))
        .unwrap();
    big.wait_for_event(|e| matches!(e, RequestEvent::Admitted { .. }));

    let mut smalls: Vec<_> = (0..6)
        .map(|_| {
            service
                .submit(quick_request().priority(Priority::Urgent))
                .unwrap()
        })
        .collect();
    for small in &mut smalls {
        let report = small.wait().unwrap();
        assert_eq!(report.disposition, Disposition::Completed);
        assert!(report.shard.is_some());
    }
    // All six finished while the big request was still in flight.
    assert!(big.try_result().is_none(), "the batch request still runs");
    let metrics = service.metrics();
    assert_eq!(metrics.served_per_shard.iter().sum::<u64>(), 6);
    // The big request's estimated cost is still charged to its shard.
    assert!(
        metrics.outstanding_cost_per_shard.iter().sum::<u64>() > 0,
        "outstanding cost: {:?}",
        metrics.outstanding_cost_per_shard
    );
    big.cancel();
    assert!(big.wait().is_ok());
    service.shutdown();
}

#[test]
fn an_idle_shard_steals_queued_work_from_a_busy_one() {
    // Occupy both shards with long requests, queue a batch of small ones
    // (placement splits them across both shards' deques by cost), then free
    // only shard A's blocker: A drains its own deque and must then steal
    // the tickets parked behind the still-running blocker on B.
    let service = CountingService::new(ServiceConfig {
        shards: 2,
        queue_capacity: 16,
    });
    let mut blockers: Vec<_> = (0..2)
        .map(|_| service.submit(long_request()).unwrap())
        .collect();
    for blocker in &mut blockers {
        blocker.wait_for_event(|e| matches!(e, RequestEvent::Admitted { .. }));
    }
    let mut smalls: Vec<_> = (0..6)
        .map(|_| service.submit(quick_request()).unwrap())
        .collect();

    // Free exactly one shard; every queued request must still complete.
    blockers[0].cancel();
    assert!(blockers[0].wait().is_ok());
    for small in &mut smalls {
        assert_eq!(small.wait().unwrap().disposition, Disposition::Completed);
    }
    let metrics = service.metrics();
    assert!(
        metrics.steals_per_shard.iter().sum::<u64>() > 0,
        "the free shard must have stolen from the blocked one: {:?}",
        metrics.steals_per_shard
    );
    blockers[1].cancel();
    assert!(blockers[1].wait().is_ok());
    service.shutdown();
}

#[test]
fn a_deep_backlog_is_served_by_more_than_one_shard() {
    // 32 concurrent requests over 2 shards: the acceptance workload shape.
    // All requests are queued up front so both parked shard threads provably
    // pull from the backlog, even on a single hardware core.
    let service = CountingService::new(ServiceConfig {
        shards: 2,
        queue_capacity: 64,
    });
    let mut handles: Vec<_> = (0..32)
        .map(|_| service.submit(quick_request()).unwrap())
        .collect();
    for handle in &mut handles {
        assert!(handle.wait().unwrap().shard.is_some());
    }
    let metrics = service.metrics();
    assert_eq!(metrics.served_per_shard.iter().sum::<u64>(), 32);
    assert!(
        metrics.served_per_shard.iter().filter(|&&n| n > 0).count() >= 2,
        "served per shard: {:?}",
        metrics.served_per_shard
    );
    service.shutdown();
}
