//! Cube-backend contract tests: the coverage invariant behind
//! cube-and-conquer, order-independence of the decisive answer, and the
//! no-thread-leak cancellation guarantee.
//!
//! The backend's UNSAT conclusion ("all cubes refuted ⇒ the check is
//! UNSAT") is only sound when the cube set *partitions* the assignment
//! space over its split bits.  `CubeContext` validates that per check with
//! [`pact_solver::cubes_partition`]; this suite pins the validator itself:
//! every probe-pruned split tree the generator can produce must partition,
//! and every single-cube mutation (drop a leaf, flip a literal) must break
//! it.  Verdict resolution is pinned order-independent both as a pure
//! function and through real oracle conquests, and mid-count cancellation
//! is pinned to leave zero live conquest threads (the portfolio-style
//! probe).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use pact::{CancellationToken, CountOutcome, OracleFactory, ProgressEvent, Session};
use pact_ir::{Sort, TermId, TermManager};
use pact_solver::{
    cubes_partition, resolve_cube_verdicts, Context, CubeBit, CubeContext, SolverConfig,
    SolverResult,
};
use proptest::prelude::*;

/// Builds a probe-pruned split tree the way `CubeContext` generates one:
/// level by level over `keys`, each frontier cube either retired as a leaf
/// (bit of `mask`, standing in for a lookahead refutation) or split
/// further; whatever survives the last level joins the leaves.
fn build_split_tree(keys: &[(TermId, u32)], mask: u32) -> Vec<Vec<CubeBit>> {
    let mut frontier: Vec<Vec<CubeBit>> = vec![Vec::new()];
    let mut leaves: Vec<Vec<CubeBit>> = Vec::new();
    let mut decision = 0u32;
    for &(var, bit) in keys {
        let mut next = Vec::new();
        for cube in frontier {
            for value in [false, true] {
                let mut candidate = cube.clone();
                candidate.push((var, bit, value));
                if mask >> (decision % 32) & 1 == 1 {
                    leaves.push(candidate);
                } else {
                    next.push(candidate);
                }
                decision += 1;
            }
        }
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }
    leaves.extend(frontier);
    leaves
}

/// Distinct split keys over a couple of bit-vector variables.
fn split_keys(tm: &mut TermManager) -> Vec<(TermId, u32)> {
    let x = tm.mk_var("x", Sort::BitVec(4));
    let y = tm.mk_var("y", Sort::BitVec(4));
    vec![(x, 0), (x, 3), (y, 1), (y, 2)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every split tree the generator can produce partitions the space —
    /// pairwise disjoint and exhaustive — and stays a partition under any
    /// reordering of its cubes; dropping a cube or flipping one literal
    /// always breaks it.
    #[test]
    fn generated_splits_partition_the_space(
        case in (1usize..=4, 0u32..65_536, 0usize..64),
    ) {
        let (depth, mask, pick) = case;
        let mut tm = TermManager::new();
        let keys = split_keys(&mut tm);
        let cubes = build_split_tree(&keys[..depth], mask);
        prop_assert!(!cubes.is_empty());
        prop_assert!(
            cubes_partition(&cubes),
            "split tree (depth {}, mask {:#x}) is not a partition: {:?}",
            depth, mask, cubes
        );
        // Partitioning is a property of the *set*: reversing the cube
        // order changes nothing.
        let reversed: Vec<_> = cubes.iter().rev().cloned().collect();
        prop_assert!(cubes_partition(&reversed));
        // Dropping any one cube leaves a hole.
        if cubes.len() >= 2 {
            let mut holed = cubes.clone();
            holed.remove(pick % holed.len());
            prop_assert!(
                !cubes_partition(&holed),
                "dropping a cube must break exhaustiveness"
            );
            // Flipping the last literal of any one cube makes it overlap
            // its sibling's region.
            let mut overlapped = cubes.clone();
            let target = pick % overlapped.len();
            let last = overlapped[target].len() - 1;
            overlapped[target][last].2 = !overlapped[target][last].2;
            prop_assert!(
                !cubes_partition(&overlapped),
                "flipping a literal must break disjointness"
            );
        }
    }

    /// The decisive answer is a pure, order-independent function of the
    /// per-cube verdicts: any rotation or reversal resolves identically.
    #[test]
    fn verdict_resolution_ignores_cube_order(
        case in (proptest::collection::vec(0u8..3, 1..=8), 0usize..8),
    ) {
        let (raw, rotation) = case;
        let verdicts: Vec<SolverResult> = raw
            .iter()
            .map(|v| match v {
                0 => SolverResult::Sat,
                1 => SolverResult::Unsat,
                _ => SolverResult::Unknown,
            })
            .collect();
        let total = verdicts.len();
        let reference = resolve_cube_verdicts(&verdicts, total);
        let mut rotated = verdicts.clone();
        rotated.rotate_left(rotation % total);
        prop_assert_eq!(resolve_cube_verdicts(&rotated, total), reference);
        let reversed: Vec<_> = verdicts.iter().rev().copied().collect();
        prop_assert_eq!(resolve_cube_verdicts(&reversed, total), reference);
    }
}

#[test]
fn conquering_cubes_in_any_order_gives_the_same_decisive_answer() {
    // Real oracle conquests, not just the pure resolver: sweep a full
    // depth-2 partition over the top bits of `x` in forward and reverse
    // order, for a satisfiable and an unsatisfiable formula, and check the
    // resolved answer matches an unsplit solve.
    let mut tm = TermManager::new();
    let x = tm.mk_var("x", Sort::BitVec(4));
    let six = tm.mk_bv_const(6, 4);
    let ten = tm.mk_bv_const(10, 4);
    let sat_formula = vec![tm.mk_bv_ult(x, six).unwrap()]; // x < 6: SAT
    let unsat_formula = vec![
        tm.mk_bv_ult(x, six).unwrap(),
        tm.mk_bv_ule(ten, x).unwrap(), // ∧ x ≥ 10: UNSAT
    ];
    let cubes: Vec<Vec<CubeBit>> = vec![
        vec![(x, 3, false), (x, 2, false)],
        vec![(x, 3, false), (x, 2, true)],
        vec![(x, 3, true), (x, 2, false)],
        vec![(x, 3, true), (x, 2, true)],
    ];
    assert!(cubes_partition(&cubes));
    for formula in [&sat_formula, &unsat_formula] {
        let mut reference = Context::new();
        reference.track_var(x);
        for &f in formula {
            reference.assert_term(f);
        }
        let expected = reference.check(&mut tm).unwrap();
        let mut answers = Vec::new();
        for order in [
            cubes.clone(),
            cubes.iter().rev().cloned().collect::<Vec<_>>(),
        ] {
            let mut oracle = Context::new();
            oracle.track_var(x);
            for &f in formula {
                oracle.assert_term(f);
            }
            let verdicts: Vec<SolverResult> = order
                .iter()
                .map(|cube| {
                    oracle.push();
                    for &(var, bit, value) in cube {
                        oracle.assert_xor_bits(vec![(var, bit)], value);
                    }
                    let verdict = oracle.check(&mut tm).unwrap();
                    oracle.pop();
                    verdict
                })
                .collect();
            answers.push(resolve_cube_verdicts(&verdicts, order.len()));
        }
        assert_eq!(answers[0], answers[1], "cube order changed the answer");
        assert_eq!(answers[0], expected, "cube sweep diverged from a solve");
    }
}

/// A cube factory whose every oracle shares one live-worker probe, so the
/// test can observe conquest threads across all the oracles a count builds
/// (base + one per round, across both scheduler threads).
fn probed_cube(depth: usize, workers: usize) -> (OracleFactory, Arc<AtomicUsize>) {
    let probe = Arc::new(AtomicUsize::new(0));
    let handle = Arc::clone(&probe);
    let factory = OracleFactory::new(move |config: SolverConfig| {
        let mut ctx = CubeContext::with_config(depth, workers, config);
        ctx.set_worker_probe(Arc::clone(&handle));
        Box::new(ctx)
    });
    (factory, probe)
}

/// A saturating instance big enough that a count has work to cancel.
fn saturating_session_builder(width: u32) -> pact::SessionBuilder {
    let mut tm = TermManager::new();
    let x = tm.mk_var("x", Sort::BitVec(width));
    let c = tm.mk_bv_const(16, width);
    let f = tm.mk_bv_ule(c, x).unwrap();
    Session::builder(tm).assert(f).project(x).seed(1)
}

#[test]
fn cancelling_mid_count_terminates_all_cube_workers_and_keeps_partial_results() {
    // Cancel from inside the progress observer while rounds are in flight
    // (two scheduler threads, each splitting checks into conquered cubes).
    // After the count returns: no conquest thread may still be alive — the
    // conquests are scoped, joined before every `check` returns — and the
    // partial work must be reported Timeout-style rather than discarded.
    let (factory, probe) = probed_cube(3, 2);
    let token = CancellationToken::new();
    let trigger = token.clone();
    let cells = Arc::new(AtomicUsize::new(0));
    let cells_seen = Arc::clone(&cells);
    let mut session = saturating_session_builder(12)
        .iterations(500)
        .threads(2)
        .oracle_factory(factory)
        .cancellation(token)
        .on_progress(move |event| {
            if let ProgressEvent::Cell { .. } = event {
                // Abort a few cells in, while checks are still being split.
                if cells_seen.fetch_add(1, Ordering::SeqCst) >= 3 {
                    trigger.cancel();
                }
            }
        })
        .build()
        .unwrap();
    let report = session.count().unwrap();

    assert_eq!(
        probe.load(Ordering::SeqCst),
        0,
        "a cube conquest thread outlived the cancelled count"
    );
    assert!(session.cancellation().is_cancelled());
    // Far fewer than the 500 requested rounds ran; the work done is kept,
    // and the cube accounting of finished checks reached the stats.
    assert!(report.stats.iterations < 500);
    assert!(report.stats.cells_explored >= 1);
    assert!(report.stats.oracle_calls >= 1);
    assert!(report.stats.cubes_split >= 1);
    assert!(report.stats.cubes_solved >= report.stats.cube_refuted_by_lookahead);
    // A cancelled run is not an error: it reports Timeout (or an estimate
    // from rounds that finished before the token flipped).
    assert!(matches!(
        report.outcome,
        CountOutcome::Timeout | CountOutcome::Approximate { .. }
    ));
}

#[test]
fn pre_cancelled_cube_count_stops_before_spawning_workers() {
    let (factory, probe) = probed_cube(3, 2);
    let token = CancellationToken::new();
    token.cancel();
    let mut session = saturating_session_builder(10)
        .iterations(50)
        .oracle_factory(factory)
        .cancellation(token)
        .build()
        .unwrap();
    let report = session.count().unwrap();
    assert_eq!(report.outcome, CountOutcome::Timeout);
    assert_eq!(probe.load(Ordering::SeqCst), 0);
}
